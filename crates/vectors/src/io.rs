//! Vector file formats.
//!
//! * **fvecs / ivecs** — the TEXMEX interchange format used by SIFT/GIST and
//!   by the paper's evaluation pipeline: each row is a little-endian `i32`
//!   dimension followed by `dim` payload elements (`f32` or `i32`). Supported
//!   so the suite can run on the real corpora when they are available.
//! * **vstore** — this workspace's own binary snapshot of a [`VecStore`]
//!   (+ metric), versioned and checksummed, built with `bytes`.

use crate::error::{AnnError, IntegrityCheck, Result};
use crate::metric::Metric;
use crate::store::VecStore;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufReader, Read, Write};
use std::path::Path;

const VSTORE_MAGIC: u32 = 0x5653_5430; // "VST0"
const VSTORE_VERSION: u16 = 1;

/// Uniquifies temp-file names when several threads write through
/// [`write_atomic`] into the same directory.
// ordering: monotone uniqueness counter; no data is published through it.
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Durably replace `path` with `data`.
///
/// The crash-safety contract: readers of `path` see either the old file or
/// the new one, never a torn mix, even across power loss. Implemented as
/// temp file in the same directory → `write_all` → `sync_all` → atomic
/// `rename` over `path` → parent-directory fsync (so the rename itself is
/// durable). On any failure the temp file is removed best-effort and `path`
/// is untouched.
pub fn write_atomic(path: &Path, data: &[u8]) -> Result<()> {
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed); // ordering: uniqueness counter
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".{}.{seq}.tmp", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp_name);
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_all()
    };
    if let Err(e) = write() {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    sync_parent_dir(path)
}

/// Fsync the directory containing `path`, making a just-completed rename
/// durable. A no-op on platforms without directory handles (Windows).
pub fn sync_parent_dir(path: &Path) -> Result<()> {
    #[cfg(unix)]
    {
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(dir) = parent {
            std::fs::File::open(dir)?.sync_all()?;
        }
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

/// Read an entire `.fvecs` file into a store.
///
/// # Errors
/// `CorruptIndex` on malformed rows (non-positive or inconsistent dims,
/// truncated payload); `Io` on filesystem errors.
pub fn read_fvecs(path: &Path) -> Result<VecStore> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut head = [0u8; 4];
    loop {
        match r.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let d = i32::from_le_bytes(head);
        if d <= 0 {
            return Err(AnnError::CorruptIndex(format!("fvecs row with dim {d}")));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(expected) if expected != d => {
                return Err(AnnError::CorruptIndex(format!(
                    "fvecs dim changed from {expected} to {d}"
                )));
            }
            _ => {}
        }
        let mut row = vec![0u8; d * 4];
        r.read_exact(&mut row)
            .map_err(|_| AnnError::CorruptIndex("fvecs row payload truncated".into()))?;
        for c in row.chunks_exact(4) {
            data.push(f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
        }
    }
    let dim = dim.ok_or(AnnError::EmptyDataset)?;
    VecStore::from_flat(dim, data)
}

/// Write a store as `.fvecs`, atomically (temp file + fsync + rename).
pub fn write_fvecs(path: &Path, store: &VecStore) -> Result<()> {
    let dim = store.dim() as i32;
    let mut data = Vec::with_capacity(store.len() * (store.dim() + 1) * 4);
    for i in 0..store.len() as u32 {
        data.extend_from_slice(&dim.to_le_bytes());
        for x in store.get(i) {
            data.extend_from_slice(&x.to_le_bytes());
        }
    }
    write_atomic(path, &data)
}

/// Read an `.ivecs` file (e.g. ground-truth id lists) as rows of `u32`.
pub fn read_ivecs(path: &Path) -> Result<Vec<Vec<u32>>> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut rows = Vec::new();
    let mut head = [0u8; 4];
    loop {
        match r.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let d = i32::from_le_bytes(head);
        if d < 0 {
            return Err(AnnError::CorruptIndex(format!("ivecs row with dim {d}")));
        }
        let mut row = vec![0u8; d as usize * 4];
        r.read_exact(&mut row)
            .map_err(|_| AnnError::CorruptIndex("ivecs row payload truncated".into()))?;
        rows.push(
            row.chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        );
    }
    Ok(rows)
}

/// Write rows of ids as `.ivecs`, atomically (temp file + fsync + rename).
pub fn write_ivecs(path: &Path, rows: &[Vec<u32>]) -> Result<()> {
    let mut data = Vec::with_capacity(rows.iter().map(|r| (r.len() + 1) * 4).sum());
    for row in rows {
        data.extend_from_slice(&(row.len() as i32).to_le_bytes());
        for id in row {
            data.extend_from_slice(&id.to_le_bytes());
        }
    }
    write_atomic(path, &data)
}

/// Serialize a store (with its metric) to the versioned `vstore` format.
pub fn vstore_to_bytes(store: &VecStore, metric: Metric) -> Bytes {
    let mut buf = BytesMut::with_capacity(24 + store.as_flat().len() * 4);
    buf.put_u32_le(VSTORE_MAGIC);
    buf.put_u16_le(VSTORE_VERSION);
    buf.put_u8(metric.tag());
    buf.put_u8(0); // reserved
    buf.put_u64_le(store.dim() as u64);
    buf.put_u64_le(store.len() as u64);
    for &x in store.as_flat() {
        buf.put_f32_le(x);
    }
    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Deserialize a `vstore` buffer, validating magic, version and checksum.
pub fn vstore_from_bytes(buf: &[u8]) -> Result<(VecStore, Metric)> {
    vstore_checked(buf).map_err(|(_, detail)| AnnError::CorruptIndex(detail))
}

/// The `vstore` parser with the failing [`IntegrityCheck`] attached, so
/// file-level loaders can report which validation step rejected the data.
pub(crate) fn vstore_checked(
    mut buf: &[u8],
) -> std::result::Result<(VecStore, Metric), (IntegrityCheck, String)> {
    if buf.len() < 24 + 8 {
        return Err((IntegrityCheck::Truncated, "vstore buffer too short".into()));
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let expect = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a(body) != expect {
        return Err((IntegrityCheck::Checksum, "vstore checksum mismatch".into()));
    }
    buf = body;
    if buf.get_u32_le() != VSTORE_MAGIC {
        return Err((IntegrityCheck::Magic, "vstore bad magic".into()));
    }
    let version = buf.get_u16_le();
    if version != VSTORE_VERSION {
        return Err((IntegrityCheck::Version, format!("vstore version {version} unsupported")));
    }
    let metric = Metric::from_tag(buf.get_u8())
        .ok_or((IntegrityCheck::Bounds, "vstore unknown metric tag".to_string()))?;
    let _reserved = buf.get_u8();
    let dim = buf.get_u64_le() as usize;
    let n = buf.get_u64_le() as usize;
    if buf.remaining() != dim * n * 4 {
        return Err((
            IntegrityCheck::Bounds,
            format!("vstore payload is {} bytes, header promises {}", buf.remaining(), dim * n * 4),
        ));
    }
    let mut data = Vec::with_capacity(dim * n);
    for _ in 0..dim * n {
        data.push(buf.get_f32_le());
    }
    let store = VecStore::from_flat(dim, data)
        .map_err(|e| (IntegrityCheck::Payload, format!("vstore payload rejected: {e}")))?;
    Ok((store, metric))
}

/// Save a store to disk in `vstore` format, atomically.
pub fn save_vstore(path: &Path, store: &VecStore, metric: Metric) -> Result<()> {
    write_atomic(path, &vstore_to_bytes(store, metric))
}

/// Load a store saved by [`save_vstore`].
///
/// # Errors
/// [`AnnError::CorruptFile`] with path and failed-check context on any
/// validation failure; `Io` on filesystem errors.
pub fn load_vstore(path: &Path) -> Result<(VecStore, Metric)> {
    let buf = std::fs::read(path)?;
    vstore_checked(&buf)
        .map_err(|(check, detail)| AnnError::corrupt_file(path, None, check, detail))
}

/// FNV-1a, the workspace-standard integrity checksum (fast, dependency-free;
/// this is corruption detection, not cryptography).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ann_vectors_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_store() -> VecStore {
        VecStore::from_rows(&[vec![1.0, -2.0, 3.5], vec![0.0, 0.25, -9.0]]).unwrap()
    }

    #[test]
    fn fvecs_roundtrip() {
        let p = tmp("roundtrip.fvecs");
        let s = sample_store();
        write_fvecs(&p, &s).unwrap();
        let s2 = read_fvecs(&p).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn fvecs_rejects_truncated_payload() {
        let p = tmp("truncated.fvecs");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3i32.to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes()); // only 1 of 3 floats
        std::fs::write(&p, bytes).unwrap();
        assert!(matches!(read_fvecs(&p), Err(AnnError::CorruptIndex(_))));
    }

    #[test]
    fn fvecs_rejects_inconsistent_dim() {
        let p = tmp("baddim.fvecs");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1i32.to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        bytes.extend_from_slice(&2i32.to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        bytes.extend_from_slice(&2.0f32.to_le_bytes());
        std::fs::write(&p, bytes).unwrap();
        assert!(matches!(read_fvecs(&p), Err(AnnError::CorruptIndex(_))));
    }

    #[test]
    fn ivecs_roundtrip() {
        let p = tmp("roundtrip.ivecs");
        let rows = vec![vec![1, 2, 3], vec![], vec![9]];
        write_ivecs(&p, &rows).unwrap();
        assert_eq!(read_ivecs(&p).unwrap(), rows);
    }

    #[test]
    fn vstore_roundtrip() {
        let s = sample_store();
        let b = vstore_to_bytes(&s, Metric::Cosine);
        let (s2, m) = vstore_from_bytes(&b).unwrap();
        assert_eq!(s, s2);
        assert_eq!(m, Metric::Cosine);
    }

    #[test]
    fn vstore_detects_bitflip() {
        let s = sample_store();
        let mut b = vstore_to_bytes(&s, Metric::L2).to_vec();
        let mid = b.len() / 2;
        b[mid] ^= 0x40;
        assert!(matches!(vstore_from_bytes(&b), Err(AnnError::CorruptIndex(_))));
    }

    #[test]
    fn vstore_rejects_short_buffer() {
        assert!(vstore_from_bytes(&[0u8; 5]).is_err());
    }

    #[test]
    fn vstore_file_roundtrip() {
        let p = tmp("store.vstore");
        let s = sample_store();
        save_vstore(&p, &s, Metric::Ip).unwrap();
        let (s2, m) = load_vstore(&p).unwrap();
        assert_eq!(s, s2);
        assert_eq!(m, Metric::Ip);
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let p = tmp("atomic.bin");
        write_atomic(&p, b"first").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"first");
        write_atomic(&p, b"second").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"second");
        // No temp litter left behind in the directory.
        let dir = p.parent().unwrap();
        let litter: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(litter.is_empty(), "{litter:?}");
    }

    #[test]
    fn load_vstore_errors_carry_path_and_check() {
        let p = tmp("ctx.vstore");
        let s = sample_store();
        save_vstore(&p, &s, Metric::L2).unwrap();
        let mut b = std::fs::read(&p).unwrap();
        let mid = b.len() / 2;
        b[mid] ^= 0x10;
        std::fs::write(&p, b).unwrap();
        match load_vstore(&p) {
            Err(AnnError::CorruptFile(ctx)) => {
                assert_eq!(ctx.path, p);
                assert_eq!(ctx.check, crate::error::IntegrityCheck::Checksum);
                assert_eq!(ctx.generation, None);
            }
            other => panic!("expected CorruptFile, got {other:?}"),
        }
    }

    #[test]
    fn fnv1a_distinguishes_inputs() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
