//! # ann-vectors
//!
//! Vector substrate for the τ-MG reproduction workspace: flat storage,
//! distance kernels, synthetic dataset generators, exact ground truth,
//! accuracy metrics, file formats and a small scoped-thread parallel layer.
//!
//! Everything downstream (graph construction, baselines, the τ-MG core, the
//! evaluation harness) is built on the types in this crate:
//!
//! * [`store::VecStore`] — contiguous row-major f32 vectors;
//! * [`metric::Metric`] / [`metric::MetricKernel`] — dissimilarities with a
//!   uniform smaller-is-better orientation;
//! * [`kernel`] — the runtime-dispatched scalar/SIMD kernel pair behind
//!   every distance call (`ANN_KERNEL=scalar|simd`);
//! * [`sq8`] — u8 scalar-quantized side-car with fused asymmetric kernels
//!   (the beam-expansion fast path; exact re-rank lives in the search layer);
//! * [`synthetic`] — seeded generators standing in for the paper's datasets;
//! * [`gt`] + [`accuracy`] — exact answers, recall@k and rderr@k;
//! * [`parallel`] — dynamic-block `parallel_for`/`parallel_map` on scoped
//!   threads (the approved dependency set has no rayon);
//! * [`io`] — fvecs/ivecs interchange plus a checksummed binary snapshot.

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod error;
pub mod gt;
pub mod io;
pub mod kernel;
pub mod metric;
pub mod parallel;
pub mod route;
pub mod sq8;
pub mod store;
pub mod synthetic;
pub mod topk;

pub use error::{AnnError, Result};
pub use gt::{brute_force_ground_truth, GroundTruth};
pub use kernel::{kernel_path, set_kernel_path, KernelPath};
pub use metric::{CosineKernel, IpKernel, L2Kernel, Metric, MetricKernel};
pub use sq8::{Sq8Query, Sq8Store};
pub use store::VecStore;
pub use synthetic::{Dataset, Recipe};
pub use topk::TopK;

#[cfg(test)]
mod send_sync_assertions {
    //! Compile-time concurrency audit: serving shares these across threads.
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn vector_types_are_send_sync() {
        assert_send_sync::<VecStore>();
        assert_send_sync::<Metric>();
        assert_send_sync::<GroundTruth>();
    }
}
