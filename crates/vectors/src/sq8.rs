//! SQ8 scalar quantization: a u8-coded side-car of a [`VecStore`] used as a
//! beam-expansion fast path.
//!
//! # Scheme
//!
//! Per-dimension affine min/max quantization — the standard "SQ8" of faiss
//! and the ANN-Benchmarks top systems. For dimension `d` with observed range
//! `[min_d, max_d]` over the dataset:
//!
//! ```text
//! code(x)  = round((x - min_d) * 255 / (max_d - min_d))   ∈ [0, 255]
//! deq(c)   = min_d + c * (max_d - min_d) / 255
//! ```
//!
//! so a vector costs `dim` bytes instead of `4*dim` — a 4x cut in the memory
//! traffic that dominates beam expansion. Distances against a float query are
//! evaluated **asymmetrically** (exact query, dequantized candidate, fused in
//! one pass) so the query side loses no precision.
//!
//! # Error model and the exact re-rank contract
//!
//! Quantization perturbs each component by at most half a step
//! `(max_d - min_d) / 510`, so every SQ8 distance is the true distance of a
//! point displaced by at most `eps = ||steps||/2` in Euclidean norm. That is
//! plenty to *order the frontier* during traversal but not to report final
//! distances, so the search layer must re-rank the final candidate pool with
//! exact f32 distances and resort by `(distance, id)` before truncating to
//! `k` — see `ann-graph`'s `beam_search_sq8_rerank`. The recall-regression
//! test in `tests/pipeline_comparison.rs` holds the fast path to within 0.01
//! recall@10 of the full-precision path at equal beam width.
//!
//! Reconstruction norms are cached per vector so cosine can normalize the
//! dequantized candidate exactly rather than against its pre-quantization
//! norm.

use crate::metric::Metric;
use crate::store::VecStore;

/// A u8 scalar-quantized mirror of a [`VecStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Store {
    dim: usize,
    /// Per-dimension lower bound of the affine code.
    mins: Vec<f32>,
    /// Per-dimension step `(max - min) / 255` (0 for constant dimensions).
    scales: Vec<f32>,
    /// Row-major codes, `n * dim` bytes.
    codes: Vec<u8>,
    /// Euclidean norm of each *dequantized* row (cosine denominator).
    norms: Vec<f32>,
}

impl Sq8Store {
    /// Quantize every vector of `store` with per-dimension min/max bounds.
    pub fn quantize(store: &VecStore) -> Self {
        let dim = store.dim();
        let n = store.len();
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for row in store.as_flat().chunks_exact(dim) {
            for (d, &x) in row.iter().enumerate() {
                if x < mins[d] {
                    mins[d] = x;
                }
                if x > maxs[d] {
                    maxs[d] = x;
                }
            }
        }
        if n == 0 {
            mins.fill(0.0);
            maxs.fill(0.0);
        }
        let scales: Vec<f32> = mins.iter().zip(&maxs).map(|(lo, hi)| (hi - lo) / 255.0).collect();
        let inv: Vec<f32> = scales.iter().map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 }).collect();
        let mut codes = Vec::with_capacity(n * dim);
        for row in store.as_flat().chunks_exact(dim) {
            for (d, &x) in row.iter().enumerate() {
                let c = ((x - mins[d]) * inv[d]).round();
                codes.push(c.clamp(0.0, 255.0) as u8);
            }
        }
        let mut norms = Vec::with_capacity(n);
        for row in codes.chunks_exact(dim.max(1)) {
            let mut s = 0.0f32;
            for (d, &c) in row.iter().enumerate() {
                let x = mins[d] + c as f32 * scales[d];
                s += x * x;
            }
            norms.push(s.sqrt());
        }
        Sq8Store { dim, mins, scales, codes, norms }
    }

    /// Number of quantized vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// Whether the store holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Code row of vector `i`.
    #[inline]
    pub fn code(&self, i: u32) -> &[u8] {
        let i = i as usize;
        &self.codes[i * self.dim..(i + 1) * self.dim]
    }

    /// Touch the first cache line of row `i` so the hardware starts the load
    /// before the distance kernel needs it (safe-Rust software prefetch).
    #[inline]
    pub fn prefetch(&self, i: u32) {
        if let Some(&c) = self.codes.get(i as usize * self.dim) {
            std::hint::black_box(c);
        }
    }

    /// Dequantize row `i` into a fresh buffer (test/debug helper).
    pub fn dequantize(&self, i: u32) -> Vec<f32> {
        self.code(i)
            .iter()
            .enumerate()
            .map(|(d, &c)| self.mins[d] + c as f32 * self.scales[d])
            .collect()
    }

    /// Asymmetric dissimilarity between a prepared query and quantized row
    /// `i`, under the same smaller-is-better orientation as
    /// [`Metric::distance`].
    #[inline]
    pub fn dist_to(&self, metric: Metric, q: &Sq8Query<'_>, i: u32) -> f32 {
        debug_assert_eq!(q.q.len(), self.dim, "sq8 query dimension mismatch");
        let codes = self.code(i);
        match metric {
            Metric::L2 => l2_sq_u8(q.q, &self.mins, &self.scales, codes),
            Metric::Ip => 1.0 - dot_u8(q.q, &self.mins, &self.scales, codes),
            Metric::Cosine => {
                let nb = self.norms[i as usize];
                if q.qnorm == 0.0 || nb == 0.0 {
                    return 1.0;
                }
                1.0 - dot_u8(q.q, &self.mins, &self.scales, codes) / (q.qnorm * nb)
            }
        }
    }

    /// Upper bound on the Euclidean displacement of any dequantized vector
    /// from its original: half a quantization step per dimension, combined.
    pub fn max_displacement(&self) -> f32 {
        self.scales.iter().map(|s| (s * 0.5) * (s * 0.5)).sum::<f32>().sqrt()
    }

    /// Bytes of quantized payload (codes + per-dim affine + norms).
    pub fn memory_bytes(&self) -> usize {
        self.codes.len() + (self.mins.len() + self.scales.len() + self.norms.len()) * 4
    }

    /// Reorder rows so that new id `i` holds old row `order[i]` (the graph
    /// relayout contract; `order` must be a permutation of `0..len`).
    pub fn permuted(&self, order: &[u32]) -> Sq8Store {
        debug_assert_eq!(order.len(), self.len(), "permutation length mismatch");
        let mut codes = Vec::with_capacity(self.codes.len());
        let mut norms = Vec::with_capacity(self.norms.len());
        for &old in order {
            codes.extend_from_slice(self.code(old));
            norms.push(self.norms[old as usize]);
        }
        Sq8Store {
            dim: self.dim,
            mins: self.mins.clone(),
            scales: self.scales.clone(),
            codes,
            norms,
        }
    }
}

/// A query prepared for asymmetric SQ8 evaluation (caches the query norm so
/// cosine pays the `sqrt` once per query, not per candidate).
#[derive(Debug, Clone, Copy)]
pub struct Sq8Query<'a> {
    q: &'a [f32],
    qnorm: f32,
}

impl<'a> Sq8Query<'a> {
    /// Prepare `q` for evaluation under `metric`.
    pub fn new(metric: Metric, q: &'a [f32]) -> Self {
        let qnorm = match metric {
            Metric::Cosine => crate::kernel::dot(q, q).sqrt(),
            _ => 0.0,
        };
        Sq8Query { q, qnorm }
    }

    /// The raw float query.
    #[inline]
    pub fn raw(&self) -> &'a [f32] {
        self.q
    }
}

/// Fused dequantize + squared-L2 kernel, eight-lane shape.
#[inline]
fn l2_sq_u8(q: &[f32], mins: &[f32], scales: &[f32], codes: &[u8]) -> f32 {
    let mut acc = [0.0f32; 8];
    let mut cq = q.chunks_exact(8);
    let mut cm = mins.chunks_exact(8);
    let mut cs = scales.chunks_exact(8);
    let mut cc = codes.chunks_exact(8);
    for (((xq, xm), xs), xc) in cq.by_ref().zip(cm.by_ref()).zip(cs.by_ref()).zip(cc.by_ref()) {
        for i in 0..8 {
            let d = xq[i] - (xm[i] + xc[i] as f32 * xs[i]);
            acc[i] += d * d;
        }
    }
    let mut sum = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    let (rq, rm, rs, rc) = (cq.remainder(), cm.remainder(), cs.remainder(), cc.remainder());
    for i in 0..rq.len() {
        let d = rq[i] - (rm[i] + rc[i] as f32 * rs[i]);
        sum += d * d;
    }
    sum
}

/// Fused dequantize + inner-product kernel, eight-lane shape.
#[inline]
fn dot_u8(q: &[f32], mins: &[f32], scales: &[f32], codes: &[u8]) -> f32 {
    let mut acc = [0.0f32; 8];
    let mut cq = q.chunks_exact(8);
    let mut cm = mins.chunks_exact(8);
    let mut cs = scales.chunks_exact(8);
    let mut cc = codes.chunks_exact(8);
    for (((xq, xm), xs), xc) in cq.by_ref().zip(cm.by_ref()).zip(cs.by_ref()).zip(cc.by_ref()) {
        for i in 0..8 {
            acc[i] += xq[i] * (xm[i] + xc[i] as f32 * xs[i]);
        }
    }
    let mut sum = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    let (rq, rm, rs, rc) = (cq.remainder(), cm.remainder(), cs.remainder(), cc.remainder());
    for i in 0..rq.len() {
        sum += rq[i] * (rm[i] + rc[i] as f32 * rs[i]);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_store(n: usize, dim: usize, seed: u64) -> VecStore {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) as f32 * 2.0 - 1.0
        };
        let rows: Vec<Vec<f32>> = (0..n).map(|_| (0..dim).map(|_| next()).collect()).collect();
        VecStore::from_rows(&rows).unwrap()
    }

    #[test]
    fn roundtrip_error_is_bounded_by_half_step() {
        let store = toy_store(64, 33, 9);
        let sq8 = Sq8Store::quantize(&store);
        for i in 0..store.len() as u32 {
            let deq = sq8.dequantize(i);
            for (d, (&x, &y)) in store.get(i).iter().zip(&deq).enumerate() {
                // half a step, padded for the rounding of the code itself
                let tol = sq8.scales[d] * 0.5 + 1e-6;
                assert!((x - y).abs() <= tol, "row {i} dim {d}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn constant_dimension_is_exact() {
        let store =
            VecStore::from_rows(&[vec![3.5, 1.0], vec![3.5, 2.0], vec![3.5, -1.0]]).unwrap();
        let sq8 = Sq8Store::quantize(&store);
        for i in 0..3u32 {
            assert_eq!(sq8.dequantize(i)[0], 3.5);
        }
    }

    #[test]
    fn asymmetric_distance_tracks_exact_distance() {
        let store = toy_store(80, 48, 4);
        let sq8 = Sq8Store::quantize(&store);
        let qstore = toy_store(4, 48, 77);
        for metric in [Metric::L2, Metric::Ip, Metric::Cosine] {
            for qi in 0..qstore.len() as u32 {
                let q = qstore.get(qi);
                let sq = Sq8Query::new(metric, q);
                for i in 0..store.len() as u32 {
                    let approx = sq8.dist_to(metric, &sq, i);
                    let deq = sq8.dequantize(i);
                    let on_deq = metric.distance(q, &deq);
                    assert!(
                        (approx - on_deq).abs() <= 1e-4 * (1.0 + on_deq.abs()),
                        "{metric:?} row {i}: fused {approx} vs dequantized {on_deq}"
                    );
                }
            }
        }
    }

    #[test]
    fn cosine_zero_guards() {
        let store = VecStore::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let sq8 = Sq8Store::quantize(&store);
        let q = [0.0f32, 0.0];
        let sq = Sq8Query::new(Metric::Cosine, &q);
        assert_eq!(sq8.dist_to(Metric::Cosine, &sq, 1), 1.0, "zero query");
        let q2 = [1.0f32, 0.0];
        let sq2 = Sq8Query::new(Metric::Cosine, &q2);
        assert_eq!(sq8.dist_to(Metric::Cosine, &sq2, 0), 1.0, "zero candidate");
    }

    #[test]
    fn permutation_relabels_rows() {
        let store = toy_store(10, 7, 3);
        let sq8 = Sq8Store::quantize(&store);
        let order: Vec<u32> = (0..10u32).rev().collect();
        let p = sq8.permuted(&order);
        for new in 0..10u32 {
            assert_eq!(p.code(new), sq8.code(order[new as usize]));
            assert_eq!(p.norms[new as usize], sq8.norms[order[new as usize] as usize]);
        }
        assert_eq!(p.mins, sq8.mins);
    }

    #[test]
    fn memory_is_about_a_quarter_of_f32() {
        let store = toy_store(100, 64, 1);
        let sq8 = Sq8Store::quantize(&store);
        assert!(sq8.memory_bytes() < store.memory_bytes() / 2);
        assert_eq!(sq8.len(), 100);
        assert_eq!(sq8.dim(), 64);
        assert!(!sq8.is_empty());
        assert!(sq8.max_displacement() > 0.0);
    }
}
