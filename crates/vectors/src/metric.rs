//! Distance metrics and their vectorization-friendly kernels.
//!
//! All metrics are expressed as *dissimilarities*: smaller is always better.
//! This uniform orientation lets every search structure in the workspace order
//! candidates with a single comparison, regardless of the underlying metric.
//!
//! | [`Metric`]   | stored value                  | ordering equivalent to      |
//! |--------------|-------------------------------|-----------------------------|
//! | `L2`         | squared Euclidean distance    | Euclidean distance          |
//! | `Ip`         | `1.0 - <a, b>`                | maximum inner product       |
//! | `Cosine`     | `1.0 - cos(a, b)`             | cosine similarity           |
//!
//! Squared L2 is used instead of L2 because `sqrt` is monotone, so orderings
//! (and therefore recall) are unchanged while each distance call saves a
//! square root — the same trick used by faiss, hnswlib and NSG.
//!
//! The actual arithmetic lives in [`crate::kernel`], which holds two
//! implementations — a portable sequential scalar path and an eight-lane
//! SIMD-shaped path that LLVM auto-vectorizes — selected once per process via
//! `ANN_KERNEL` (see [`crate::kernel::kernel_path`]). The free functions here
//! (`l2_sq`, `dot`, `cosine_dissim`) forward to the dispatched kernels, so
//! every builder and searcher in the workspace picks up a path switch without
//! call-site changes. `crates/vectors/tests/kernel_parity.rs` proves the two
//! paths agree.

/// Dissimilarity measure attached to a dataset.
///
/// The enum is `Copy` and is dispatched **once** per search (the hot loops are
/// monomorphized through [`MetricKernel`]), never per distance evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Squared Euclidean distance.
    L2,
    /// Inner-product dissimilarity `1 - <a,b>` (for maximum-inner-product search).
    Ip,
    /// Cosine dissimilarity `1 - cos(a,b)`.
    ///
    /// For unit-normalized inputs this is computed with the `Ip` kernel since
    /// the two coincide; [`crate::store::VecStore::normalize`] is the intended
    /// preprocessing step.
    Cosine,
}

impl Metric {
    /// Evaluate the dissimilarity between two equal-length vectors.
    ///
    /// # Panics
    /// Debug-asserts that the slices have equal length; in release builds a
    /// mismatch silently truncates to the shorter slice (the storage layer
    /// guarantees equal dimensions for all vectors of a dataset).
    #[inline]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        match self {
            Metric::L2 => l2_sq(a, b),
            Metric::Ip => 1.0 - dot(a, b),
            Metric::Cosine => cosine_dissim(a, b),
        }
    }

    /// Human-readable name used by the reporting layer.
    pub fn name(self) -> &'static str {
        match self {
            Metric::L2 => "L2",
            Metric::Ip => "InnerProduct",
            Metric::Cosine => "Cosine",
        }
    }

    /// Parse a metric name as emitted by [`Metric::name`] (case-insensitive).
    pub fn parse(s: &str) -> Option<Metric> {
        match s.to_ascii_lowercase().as_str() {
            "l2" | "euclidean" => Some(Metric::L2),
            "ip" | "innerproduct" | "dot" => Some(Metric::Ip),
            "cosine" | "cos" => Some(Metric::Cosine),
            _ => None,
        }
    }

    /// Whether the triangle inequality holds for this dissimilarity.
    ///
    /// Query-aware edge occlusion (QEO) and other triangle-inequality-based
    /// pruning must be disabled when this returns `false`. It holds for
    /// `sqrt(L2)`; the QEO implementation takes square roots accordingly.
    pub fn is_metric_space(self) -> bool {
        matches!(self, Metric::L2)
    }

    /// Stable on-disk tag for serialization.
    pub(crate) fn tag(self) -> u8 {
        match self {
            Metric::L2 => 0,
            Metric::Ip => 1,
            Metric::Cosine => 2,
        }
    }

    pub(crate) fn from_tag(t: u8) -> Option<Metric> {
        match t {
            0 => Some(Metric::L2),
            1 => Some(Metric::Ip),
            2 => Some(Metric::Cosine),
            _ => None,
        }
    }
}

/// Monomorphization hook: a zero-sized type per metric so the innermost search
/// loops compile to straight-line code with the kernel inlined.
pub trait MetricKernel: Copy + Send + Sync + 'static {
    /// The runtime metric this kernel implements.
    const METRIC: Metric;
    /// Evaluate the dissimilarity.
    fn eval(a: &[f32], b: &[f32]) -> f32;
}

/// Zero-sized kernel for [`Metric::L2`].
#[derive(Debug, Clone, Copy, Default)]
pub struct L2Kernel;
/// Zero-sized kernel for [`Metric::Ip`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IpKernel;
/// Zero-sized kernel for [`Metric::Cosine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CosineKernel;

impl MetricKernel for L2Kernel {
    const METRIC: Metric = Metric::L2;
    #[inline(always)]
    fn eval(a: &[f32], b: &[f32]) -> f32 {
        l2_sq(a, b)
    }
}
impl MetricKernel for IpKernel {
    const METRIC: Metric = Metric::Ip;
    #[inline(always)]
    fn eval(a: &[f32], b: &[f32]) -> f32 {
        1.0 - dot(a, b)
    }
}
impl MetricKernel for CosineKernel {
    const METRIC: Metric = Metric::Cosine;
    #[inline(always)]
    fn eval(a: &[f32], b: &[f32]) -> f32 {
        cosine_dissim(a, b)
    }
}

/// Squared Euclidean distance under the dispatched kernel path.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    crate::kernel::l2_sq(a, b)
}

/// Inner product under the dispatched kernel path.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    crate::kernel::dot(a, b)
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine dissimilarity `1 - <a,b> / (|a||b|)`.
///
/// Computed with the fused [`crate::kernel::dot3`] — one pass over both
/// vectors instead of three. Degenerate zero-norm inputs yield the maximal
/// dissimilarity `1.0` rather than NaN so that search orderings stay total.
#[inline]
pub fn cosine_dissim(a: &[f32], b: &[f32]) -> f32 {
    let (ip, aa, bb) = crate::kernel::dot3(a, b);
    if aa == 0.0 || bb == 0.0 {
        return 1.0;
    }
    1.0 - ip / (aa.sqrt() * bb.sqrt())
}

/// Naive scalar references used to validate the lane-structured kernels.
/// These are the sequential kernels from [`crate::kernel::scalar`].
pub mod reference {
    pub use crate::kernel::scalar::{dot, l2_sq};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        // Tiny xorshift so the kernel tests do not depend on `rand`.
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) as f32 * 2.0 - 1.0
        };
        let a: Vec<f32> = (0..dim).map(|_| next()).collect();
        let b: Vec<f32> = (0..dim).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn l2_matches_reference_across_dims() {
        for dim in [1, 3, 7, 8, 9, 15, 16, 17, 31, 100, 128, 257, 960] {
            let (a, b) = vecs(dim, dim as u64);
            let fast = l2_sq(&a, &b);
            let slow = reference::l2_sq(&a, &b);
            assert!(
                (fast - slow).abs() <= 1e-4 * slow.abs().max(1.0),
                "dim {dim}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn dot_matches_reference_across_dims() {
        for dim in [1, 2, 8, 13, 64, 100, 300, 420] {
            let (a, b) = vecs(dim, 1000 + dim as u64);
            let fast = dot(&a, &b);
            let slow = reference::dot(&a, &b);
            assert!(
                (fast - slow).abs() <= 1e-4 * slow.abs().max(1.0),
                "dim {dim}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn l2_identity_and_symmetry() {
        let (a, b) = vecs(64, 7);
        assert_eq!(l2_sq(&a, &a), 0.0);
        assert_eq!(l2_sq(&a, &b), l2_sq(&b, &a));
        assert!(l2_sq(&a, &b) > 0.0);
    }

    #[test]
    fn cosine_of_parallel_vectors_is_zero() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b: Vec<f32> = a.iter().map(|x| x * 2.5).collect();
        assert!(cosine_dissim(&a, &b).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_one() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert!((cosine_dissim(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_handles_zero_vector() {
        let a = vec![0.0; 8];
        let b = vec![1.0; 8];
        assert_eq!(cosine_dissim(&a, &b), 1.0);
    }

    #[test]
    fn ip_dissimilarity_orders_by_inner_product() {
        let q = vec![1.0, 0.0];
        let hi = vec![5.0, 0.0]; // larger inner product
        let lo = vec![1.0, 0.0];
        assert!(Metric::Ip.distance(&q, &hi) < Metric::Ip.distance(&q, &lo));
    }

    #[test]
    fn metric_name_parse_roundtrip() {
        for m in [Metric::L2, Metric::Ip, Metric::Cosine] {
            assert_eq!(Metric::parse(m.name()), Some(m));
            assert_eq!(Metric::from_tag(m.tag()), Some(m));
        }
        assert_eq!(Metric::parse("nope"), None);
        assert_eq!(Metric::from_tag(99), None);
    }

    #[test]
    fn kernel_structs_match_enum_dispatch() {
        let (a, b) = vecs(100, 42);
        assert_eq!(L2Kernel::eval(&a, &b), Metric::L2.distance(&a, &b));
        assert_eq!(IpKernel::eval(&a, &b), Metric::Ip.distance(&a, &b));
        assert_eq!(CosineKernel::eval(&a, &b), Metric::Cosine.distance(&a, &b));
    }

    #[test]
    fn triangle_inequality_for_sqrt_l2() {
        // sqrt(l2_sq) is a metric; spot-check on random triples.
        for seed in 0..50u64 {
            let (a, b) = vecs(32, seed);
            let (c, _) = vecs(32, seed + 1000);
            let ab = l2_sq(&a, &b).sqrt();
            let bc = l2_sq(&b, &c).sqrt();
            let ac = l2_sq(&a, &c).sqrt();
            assert!(ac <= ab + bc + 1e-4);
        }
    }
}
