//! Runtime-dispatched distance kernels: a portable scalar path and an
//! explicitly lane-structured SIMD path.
//!
//! # Why two paths
//!
//! The scalar kernels accumulate **sequentially** (one chain of dependent
//! adds). Rust's strict floating-point semantics forbid the compiler from
//! reassociating that chain, so the scalar path compiles to genuine scalar
//! code on every target — it is the portable baseline and the semantic
//! reference. The SIMD kernels restructure the same reduction into eight
//! independent lanes (`[f32; 8]` accumulators, the `f32x8` shape) with a
//! 4x-unrolled 32-element main block, which LLVM reliably auto-vectorizes to
//! packed AVX/NEON adds and multiplies — no `unsafe`, no `std::arch`, and the
//! workspace-wide `#![forbid(unsafe_code)]` stays intact.
//!
//! # Dispatch
//!
//! The active path is a process-global byte read by [`kernel_path`] on every
//! kernel call (one relaxed load + a predictable branch — noise next to a
//! 128-dim distance). It initializes lazily from the `ANN_KERNEL`
//! environment variable (`scalar` or `simd`, default `simd`) and can be
//! overridden in-process with [`set_kernel_path`], which is how the parity
//! suite and the CI `kernels` job A/B the two paths. All callers go through
//! [`crate::metric::Metric::distance`] (or the free `l2_sq`/`dot` functions,
//! which forward here), so a path switch covers every builder and searcher
//! at once.
//!
//! # Error model
//!
//! Lane-restructured summation rounds differently from sequential summation;
//! for the positive summands of `l2_sq` both are within `O(n·eps)` of the
//! exact value and the SIMD path is the *more* accurate of the two (shorter
//! chains). The parity suite pins this down two ways: on exactly-representable
//! inputs (small integers, where every product and partial sum is exact) the
//! two paths must agree to 0 ULP across every remainder-lane shape, and on
//! random inputs both must sit within a tight relative band of an f64
//! reference.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation the process is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Sequential accumulation; the portable reference semantics.
    Scalar,
    /// Eight-lane accumulators with a 4x-unrolled main block.
    Simd,
}

impl KernelPath {
    /// Name as accepted by the `ANN_KERNEL` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Simd => "simd",
        }
    }
}

const PATH_UNSET: u8 = 0;
const PATH_SCALAR: u8 = 1;
const PATH_SIMD: u8 = 2;

/// Process-global dispatch byte. It is a standalone flag: it guards no other
/// data (both values select a correct kernel), so Relaxed is sufficient.
static DISPATCH: AtomicU8 = AtomicU8::new(PATH_UNSET);

/// The active kernel path, resolving `ANN_KERNEL` on first use.
#[inline]
pub fn kernel_path() -> KernelPath {
    // ordering: Relaxed — standalone mode flag; every readable value yields a
    // correct kernel, no data is published through it.
    match DISPATCH.load(Ordering::Relaxed) {
        PATH_SCALAR => KernelPath::Scalar,
        PATH_SIMD => KernelPath::Simd,
        _ => init_path(),
    }
}

#[cold]
fn init_path() -> KernelPath {
    let p = match std::env::var("ANN_KERNEL") {
        Ok(s) if s.eq_ignore_ascii_case("scalar") => KernelPath::Scalar,
        _ => KernelPath::Simd,
    };
    set_kernel_path(p);
    p
}

/// Force the kernel path for this process (overrides `ANN_KERNEL`).
///
/// Intended for the parity suite and benchmarks; a racing reader may use the
/// previous path for calls already in flight, which is harmless — both paths
/// are correct.
pub fn set_kernel_path(p: KernelPath) {
    let tag = match p {
        KernelPath::Scalar => PATH_SCALAR,
        KernelPath::Simd => PATH_SIMD,
    };
    // ordering: Relaxed — see `kernel_path`.
    DISPATCH.store(tag, Ordering::Relaxed);
}

/// Squared Euclidean distance under the active path.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    match kernel_path() {
        KernelPath::Scalar => scalar::l2_sq(a, b),
        KernelPath::Simd => simd::l2_sq(a, b),
    }
}

/// Inner product under the active path.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    match kernel_path() {
        KernelPath::Scalar => scalar::dot(a, b),
        KernelPath::Simd => simd::dot(a, b),
    }
}

/// Fused `(<a,b>, <a,a>, <b,b>)` under the active path — one memory pass for
/// cosine instead of three.
#[inline]
pub fn dot3(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    match kernel_path() {
        KernelPath::Scalar => scalar::dot3(a, b),
        KernelPath::Simd => simd::dot3(a, b),
    }
}

/// Portable sequential kernels: the semantic reference. Strict FP ordering
/// keeps LLVM from vectorizing these, which is exactly the point — they are
/// the honest "before" of the kernels benchmark.
pub mod scalar {
    /// Sequential squared Euclidean distance.
    #[inline]
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        let mut sum = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            let d = x - y;
            sum += d * d;
        }
        sum
    }

    /// Sequential inner product.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut sum = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            sum += x * y;
        }
        sum
    }

    /// Sequential fused `(<a,b>, <a,a>, <b,b>)`.
    #[inline]
    pub fn dot3(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        let (mut ab, mut aa, mut bb) = (0.0f32, 0.0f32, 0.0f32);
        for (x, y) in a.iter().zip(b) {
            ab += x * y;
            aa += x * x;
            bb += y * y;
        }
        (ab, aa, bb)
    }
}

/// Lane-structured kernels: eight `f32` lanes, 4x-unrolled 32-element main
/// block, 8-element tail blocks, sequential scalar remainder, and a fixed
/// pairwise fold order so results are bit-reproducible run to run.
pub mod simd {
    /// Fold eight lane accumulators pairwise (fixed order).
    #[inline(always)]
    fn fold8(acc: &[f32; 8]) -> f32 {
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
    }

    /// Lane-structured squared Euclidean distance.
    #[inline]
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        let mut acc0 = [0.0f32; 8];
        let mut acc1 = [0.0f32; 8];
        let mut acc2 = [0.0f32; 8];
        let mut acc3 = [0.0f32; 8];
        let mut ca = a.chunks_exact(32);
        let mut cb = b.chunks_exact(32);
        for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
            for i in 0..8 {
                let d0 = xa[i] - xb[i];
                acc0[i] += d0 * d0;
                let d1 = xa[i + 8] - xb[i + 8];
                acc1[i] += d1 * d1;
                let d2 = xa[i + 16] - xb[i + 16];
                acc2[i] += d2 * d2;
                let d3 = xa[i + 24] - xb[i + 24];
                acc3[i] += d3 * d3;
            }
        }
        let mut ta = ca.remainder().chunks_exact(8);
        let mut tb = cb.remainder().chunks_exact(8);
        for (xa, xb) in ta.by_ref().zip(tb.by_ref()) {
            for i in 0..8 {
                let d = xa[i] - xb[i];
                acc0[i] += d * d;
            }
        }
        for i in 0..8 {
            acc0[i] = (acc0[i] + acc1[i]) + (acc2[i] + acc3[i]);
        }
        let mut sum = fold8(&acc0);
        for (xa, xb) in ta.remainder().iter().zip(tb.remainder()) {
            let d = xa - xb;
            sum += d * d;
        }
        sum
    }

    /// Lane-structured inner product.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut acc0 = [0.0f32; 8];
        let mut acc1 = [0.0f32; 8];
        let mut acc2 = [0.0f32; 8];
        let mut acc3 = [0.0f32; 8];
        let mut ca = a.chunks_exact(32);
        let mut cb = b.chunks_exact(32);
        for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
            for i in 0..8 {
                acc0[i] += xa[i] * xb[i];
                acc1[i] += xa[i + 8] * xb[i + 8];
                acc2[i] += xa[i + 16] * xb[i + 16];
                acc3[i] += xa[i + 24] * xb[i + 24];
            }
        }
        let mut ta = ca.remainder().chunks_exact(8);
        let mut tb = cb.remainder().chunks_exact(8);
        for (xa, xb) in ta.by_ref().zip(tb.by_ref()) {
            for i in 0..8 {
                acc0[i] += xa[i] * xb[i];
            }
        }
        for i in 0..8 {
            acc0[i] = (acc0[i] + acc1[i]) + (acc2[i] + acc3[i]);
        }
        let mut sum = fold8(&acc0);
        for (xa, xb) in ta.remainder().iter().zip(tb.remainder()) {
            sum += xa * xb;
        }
        sum
    }

    /// Lane-structured fused `(<a,b>, <a,a>, <b,b>)`.
    ///
    /// Single eight-lane accumulator per component (three live accumulator
    /// vectors fit comfortably in registers; a 4x unroll here would spill).
    #[inline]
    pub fn dot3(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        let mut ab = [0.0f32; 8];
        let mut aa = [0.0f32; 8];
        let mut bb = [0.0f32; 8];
        let mut ca = a.chunks_exact(8);
        let mut cb = b.chunks_exact(8);
        for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
            for i in 0..8 {
                ab[i] += xa[i] * xb[i];
                aa[i] += xa[i] * xa[i];
                bb[i] += xb[i] * xb[i];
            }
        }
        let (mut sab, mut saa, mut sbb) = (fold8(&ab), fold8(&aa), fold8(&bb));
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            sab += x * y;
            saa += x * x;
            sbb += y * y;
        }
        (sab, saa, sbb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ivecs(dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        // Small-integer components: products and partial sums are exactly
        // representable, so any summation order gives the identical f32.
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 33) % 17) as f32 - 8.0
        };
        let a: Vec<f32> = (0..dim).map(|_| next()).collect();
        let b: Vec<f32> = (0..dim).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn paths_agree_exactly_on_integer_inputs() {
        for dim in 0..=70 {
            let (a, b) = ivecs(dim, dim as u64 + 1);
            assert_eq!(scalar::l2_sq(&a, &b).to_bits(), simd::l2_sq(&a, &b).to_bits(), "l2 {dim}");
            assert_eq!(scalar::dot(&a, &b).to_bits(), simd::dot(&a, &b).to_bits(), "dot {dim}");
            let (x, y) = (scalar::dot3(&a, &b), simd::dot3(&a, &b));
            assert_eq!(
                (x.0.to_bits(), x.1.to_bits(), x.2.to_bits()),
                (y.0.to_bits(), y.1.to_bits(), y.2.to_bits()),
                "dot3 {dim}"
            );
        }
    }

    #[test]
    fn dispatch_switches_paths() {
        let prev = kernel_path();
        set_kernel_path(KernelPath::Scalar);
        assert_eq!(kernel_path(), KernelPath::Scalar);
        set_kernel_path(KernelPath::Simd);
        assert_eq!(kernel_path(), KernelPath::Simd);
        set_kernel_path(prev);
        assert_eq!(KernelPath::Scalar.name(), "scalar");
        assert_eq!(KernelPath::Simd.name(), "simd");
    }

    #[test]
    fn dot3_components_match_individual_kernels() {
        let (a, b) = ivecs(100, 7);
        let (ab, aa, bb) = simd::dot3(&a, &b);
        assert_eq!(ab, simd::dot(&a, &b));
        // dot3's <a,a> uses a single 8-lane accumulator while dot uses the
        // 4x-unrolled shape; on exact inputs they still agree bit-for-bit.
        assert_eq!(aa, simd::dot(&a, &a));
        assert_eq!(bb, simd::dot(&b, &b));
    }
}
