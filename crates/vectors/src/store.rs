//! Flat, contiguous storage for fixed-dimension f32 vectors.
//!
//! All vectors of a dataset live in one `Vec<f32>` in row-major order. This is
//! the single most important layout decision in the workspace: proximity-graph
//! search is memory-bound, and a flat layout gives sequential prefetchable
//! reads, zero per-vector allocation, and one-`memcpy` serialization.

use crate::error::{AnnError, Result};
use crate::metric::{dot, Metric};

/// A dense matrix of `n` vectors of dimensionality `dim`, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct VecStore {
    dim: usize,
    data: Vec<f32>,
}

impl VecStore {
    /// Create an empty store for vectors of dimensionality `dim`.
    ///
    /// # Errors
    /// `InvalidParameter` if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(AnnError::InvalidParameter("dim must be > 0".into()));
        }
        Ok(VecStore { dim, data: Vec::new() })
    }

    /// Create a store with pre-reserved capacity for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Result<Self> {
        let mut s = Self::new(dim)?;
        s.data.reserve_exact(n * dim);
        Ok(s)
    }

    /// Build a store from a flat row-major buffer.
    ///
    /// # Errors
    /// `InvalidParameter` if the buffer length is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Result<Self> {
        if dim == 0 {
            return Err(AnnError::InvalidParameter("dim must be > 0".into()));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(AnnError::InvalidParameter(format!(
                "flat buffer of {} floats is not a multiple of dim {}",
                data.len(),
                dim
            )));
        }
        Ok(VecStore { dim, data })
    }

    /// Build a store from row slices; all rows must share one dimensionality.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        let dim = rows.first().map(|r| r.len()).ok_or(AnnError::EmptyDataset)?;
        let mut s = Self::with_capacity(dim, rows.len())?;
        for r in rows {
            s.push(r)?;
        }
        Ok(s)
    }

    /// Append one vector.
    ///
    /// # Errors
    /// `DimensionMismatch` if `v.len() != self.dim()`.
    pub fn push(&mut self, v: &[f32]) -> Result<u32> {
        if v.len() != self.dim {
            return Err(AnnError::DimensionMismatch { expected: self.dim, got: v.len() });
        }
        let id = self.len() as u32;
        self.data.extend_from_slice(v);
        Ok(id)
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the store holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow vector `i`.
    ///
    /// # Panics
    /// If `i >= self.len()`. The hot loops only pass ids produced by the
    /// store itself, so this is a programming-error check, not a runtime path.
    #[inline]
    pub fn get(&self, i: u32) -> &[f32] {
        let i = i as usize;
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Checked variant of [`VecStore::get`].
    pub fn try_get(&self, i: u32) -> Result<&[f32]> {
        if (i as usize) < self.len() {
            Ok(self.get(i))
        } else {
            Err(AnnError::IdOutOfRange { id: i as u64, len: self.len() as u64 })
        }
    }

    /// The raw flat buffer (row-major).
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Dissimilarity between stored vectors `i` and `j` under `metric`.
    #[inline]
    pub fn dist(&self, metric: Metric, i: u32, j: u32) -> f32 {
        let (vi, vj) = (self.get(i), self.get(j));
        metric.distance(vi, vj)
    }

    /// Dissimilarity between a query slice and stored vector `i`.
    ///
    /// Row resolution is hoisted out of the kernel call so the kernel always
    /// receives two pre-resolved equal-length slices; a query of the wrong
    /// dimensionality is a programming error caught here (debug builds)
    /// rather than silently truncating inside the kernel.
    #[inline]
    pub fn dist_to(&self, metric: Metric, q: &[f32], i: u32) -> f32 {
        debug_assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let row = self.get(i);
        metric.distance(q, row)
    }

    /// Touch the first cache line of row `i` so the hardware starts loading
    /// the vector before a distance kernel reads it (safe-Rust software
    /// prefetch; out-of-range ids are a silent no-op).
    #[inline]
    pub fn prefetch(&self, i: u32) {
        if let Some(&x) = self.data.get(i as usize * self.dim) {
            std::hint::black_box(x);
        }
    }

    /// Copy with rows reordered so that new id `i` holds old row `order[i]`
    /// (the graph-relayout contract; `order` must be a permutation of
    /// `0..len`).
    pub fn permuted(&self, order: &[u32]) -> VecStore {
        debug_assert_eq!(order.len(), self.len(), "permutation length mismatch");
        let mut data = Vec::with_capacity(self.data.len());
        for &old in order {
            data.extend_from_slice(self.get(old));
        }
        VecStore { dim: self.dim, data }
    }

    /// Normalize every vector to unit L2 norm in place.
    ///
    /// Zero vectors are left untouched (they stay maximal-dissimilarity under
    /// cosine by the kernel's convention). Intended preprocessing for
    /// [`Metric::Cosine`] datasets so the cheaper `Ip` kernel could be used,
    /// and for making cosine geometry explicit in the synthetic generators.
    pub fn normalize(&mut self) {
        let dim = self.dim;
        for row in self.data.chunks_exact_mut(dim) {
            let n = dot(row, row).sqrt();
            if n > 0.0 {
                let inv = 1.0 / n;
                for x in row.iter_mut() {
                    *x *= inv;
                }
            }
        }
    }

    /// Arithmetic mean of all vectors.
    ///
    /// # Errors
    /// `EmptyDataset` if the store is empty.
    pub fn centroid(&self) -> Result<Vec<f32>> {
        if self.is_empty() {
            return Err(AnnError::EmptyDataset);
        }
        let mut c = vec![0.0f64; self.dim];
        for row in self.data.chunks_exact(self.dim) {
            for (acc, x) in c.iter_mut().zip(row) {
                *acc += *x as f64;
            }
        }
        let inv = 1.0 / self.len() as f64;
        Ok(c.into_iter().map(|x| (x * inv) as f32).collect())
    }

    /// Id of the stored vector closest to the centroid — the canonical entry
    /// point ("medoid" / "navigating node") used by NSG, Vamana and τ-MNG.
    pub fn medoid(&self, metric: Metric) -> Result<u32> {
        let c = self.centroid()?;
        let mut best = (0u32, f32::INFINITY);
        for i in 0..self.len() as u32 {
            let d = self.dist_to(metric, &c, i);
            if d < best.1 {
                best = (i, d);
            }
        }
        Ok(best.0)
    }

    /// Bytes of vector payload held by this store.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store3() -> VecStore {
        VecStore::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap()
    }

    #[test]
    fn push_and_get_roundtrip() {
        let mut s = VecStore::new(3).unwrap();
        assert!(s.is_empty());
        let a = s.push(&[1.0, 2.0, 3.0]).unwrap();
        let b = s.push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut s = VecStore::new(3).unwrap();
        assert!(matches!(
            s.push(&[1.0]),
            Err(AnnError::DimensionMismatch { expected: 3, got: 1 })
        ));
    }

    #[test]
    fn zero_dim_rejected() {
        assert!(VecStore::new(0).is_err());
        assert!(VecStore::from_flat(0, vec![]).is_err());
    }

    #[test]
    fn from_flat_validates_length() {
        assert!(VecStore::from_flat(3, vec![0.0; 7]).is_err());
        let s = VecStore::from_flat(3, vec![0.0; 9]).unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn try_get_bounds() {
        let s = store3();
        assert!(s.try_get(2).is_ok());
        assert!(matches!(s.try_get(3), Err(AnnError::IdOutOfRange { .. })));
    }

    #[test]
    fn distances_between_rows() {
        let s = store3();
        assert_eq!(s.dist(Metric::L2, 0, 1), 1.0);
        assert_eq!(s.dist(Metric::L2, 0, 2), 4.0);
        assert_eq!(s.dist_to(Metric::L2, &[1.0, 0.0], 1), 0.0);
    }

    #[test]
    fn normalize_makes_unit_norm() {
        let mut s = store3();
        s.normalize();
        // Row 0 is the zero vector and must be untouched.
        assert_eq!(s.get(0), &[0.0, 0.0]);
        for i in 1..3 {
            let n = dot(s.get(i), s.get(i)).sqrt();
            assert!((n - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn centroid_and_medoid() {
        let s = store3();
        let c = s.centroid().unwrap();
        assert!((c[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((c[1] - 2.0 / 3.0).abs() < 1e-6);
        // Closest point to (1/3, 2/3) is (0,0): d²=5/9 vs (1,0): d²=8/9 vs (0,2): d²=1.89
        assert_eq!(s.medoid(Metric::L2).unwrap(), 0);
    }

    #[test]
    fn empty_centroid_fails() {
        let s = VecStore::new(2).unwrap();
        assert!(matches!(s.centroid(), Err(AnnError::EmptyDataset)));
        assert!(s.medoid(Metric::L2).is_err());
    }

    #[test]
    fn from_rows_empty_fails() {
        assert!(matches!(VecStore::from_rows(&[]), Err(AnnError::EmptyDataset)));
    }

    #[test]
    fn memory_accounting() {
        let s = store3();
        assert_eq!(s.memory_bytes(), 3 * 2 * 4);
    }
}
