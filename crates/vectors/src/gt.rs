//! Exact ground truth by (parallel) brute force, and the `GroundTruth`
//! container consumed by the accuracy metrics and the evaluation harness.

use crate::error::{AnnError, Result};
use crate::metric::Metric;
use crate::parallel::{num_threads, parallel_map};
use crate::store::VecStore;
use crate::topk::TopK;

/// Exact k-nearest-neighbor answers for a query set, flattened row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    k: usize,
    /// `n_queries × k` neighbor ids, ascending distance within each row.
    ids: Vec<u32>,
    /// Matching dissimilarities.
    dists: Vec<f32>,
}

impl GroundTruth {
    /// Assemble from per-query sorted `(dist, id)` rows.
    ///
    /// # Errors
    /// `InvalidParameter` if any row has a different length than `k`.
    pub fn from_rows(k: usize, rows: &[Vec<(f32, u32)>]) -> Result<Self> {
        let mut ids = Vec::with_capacity(rows.len() * k);
        let mut dists = Vec::with_capacity(rows.len() * k);
        for (qi, row) in rows.iter().enumerate() {
            if row.len() != k {
                return Err(AnnError::InvalidParameter(format!(
                    "ground-truth row {qi} has {} entries, expected {k}",
                    row.len()
                )));
            }
            for &(d, id) in row {
                ids.push(id);
                dists.push(d);
            }
        }
        Ok(GroundTruth { k, ids, dists })
    }

    /// Number of neighbors stored per query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of queries covered.
    pub fn n_queries(&self) -> usize {
        self.ids.len() / self.k
    }

    /// Neighbor ids of query `q` (ascending distance).
    pub fn ids(&self, q: usize) -> &[u32] {
        &self.ids[q * self.k..(q + 1) * self.k]
    }

    /// Neighbor dissimilarities of query `q` (ascending).
    pub fn dists(&self, q: usize) -> &[f32] {
        &self.dists[q * self.k..(q + 1) * self.k]
    }

    /// Exact nearest neighbor of query `q`.
    pub fn nn(&self, q: usize) -> (u32, f32) {
        (self.ids(q)[0], self.dists(q)[0])
    }

    /// Mean distance from each query to its exact nearest neighbor — the
    /// `d(q, P)` statistic reported in the dataset table (E1). For L2 the
    /// stored value is squared, so the square root is taken here.
    pub fn mean_query_nn_distance(&self, metric: Metric) -> f64 {
        let n = self.n_queries();
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = (0..n)
            .map(|q| {
                let d = self.dists(q)[0] as f64;
                if metric == Metric::L2 {
                    d.max(0.0).sqrt()
                } else {
                    d
                }
            })
            .sum();
        sum / n as f64
    }
}

/// Compute exact top-`k` ground truth for every query by brute force,
/// parallelized over queries.
///
/// # Errors
/// * `EmptyDataset` if base or query set is empty.
/// * `InvalidParameter` if `k == 0` or `k > base.len()`.
/// * `DimensionMismatch` if base and query dimensionality differ.
pub fn brute_force_ground_truth(
    metric: Metric,
    base: &VecStore,
    queries: &VecStore,
    k: usize,
) -> Result<GroundTruth> {
    if base.is_empty() || queries.is_empty() {
        return Err(AnnError::EmptyDataset);
    }
    if queries.dim() != base.dim() {
        return Err(AnnError::DimensionMismatch { expected: base.dim(), got: queries.dim() });
    }
    if k == 0 || k > base.len() {
        return Err(AnnError::InvalidParameter(format!("k = {k} not in 1..={}", base.len())));
    }
    let rows = parallel_map(queries.len(), num_threads(), |qi| {
        let q = queries.get(qi as u32);
        let mut top = TopK::new(k);
        for j in 0..base.len() as u32 {
            let d = metric.distance(q, base.get(j));
            if d < top.threshold() {
                top.push(d, j);
            }
        }
        top.into_sorted()
    });
    GroundTruth::from_rows(k, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_base() -> VecStore {
        // 2-d integer grid 5×5 = 25 points, id = y*5 + x.
        let mut s = VecStore::new(2).unwrap();
        for y in 0..5 {
            for x in 0..5 {
                s.push(&[x as f32, y as f32]).unwrap();
            }
        }
        s
    }

    #[test]
    fn exact_nn_on_grid() {
        let base = grid_base();
        let mut queries = VecStore::new(2).unwrap();
        queries.push(&[0.1, 0.1]).unwrap(); // nearest: (0,0) = id 0
        queries.push(&[3.9, 2.1]).unwrap(); // nearest: (4,2) = id 14
        let gt = brute_force_ground_truth(Metric::L2, &base, &queries, 3).unwrap();
        assert_eq!(gt.nn(0).0, 0);
        assert_eq!(gt.nn(1).0, 14);
        // Rows sorted ascending.
        for q in 0..2 {
            let d = gt.dists(q);
            assert!(d.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn k_equals_n_returns_everything() {
        let base = grid_base();
        let mut q = VecStore::new(2).unwrap();
        q.push(&[2.0, 2.0]).unwrap();
        let gt = brute_force_ground_truth(Metric::L2, &base, &q, 25).unwrap();
        let mut ids: Vec<u32> = gt.ids(0).to_vec();
        ids.sort_unstable();
        assert_eq!(ids, (0..25).collect::<Vec<u32>>());
    }

    #[test]
    fn parameter_validation() {
        let base = grid_base();
        let mut q = VecStore::new(2).unwrap();
        q.push(&[0.0, 0.0]).unwrap();
        assert!(brute_force_ground_truth(Metric::L2, &base, &q, 0).is_err());
        assert!(brute_force_ground_truth(Metric::L2, &base, &q, 26).is_err());
        let q3 = VecStore::from_rows(&[vec![0.0, 0.0, 0.0]]).unwrap();
        assert!(matches!(
            brute_force_ground_truth(Metric::L2, &base, &q3, 1),
            Err(AnnError::DimensionMismatch { .. })
        ));
        let empty = VecStore::new(2).unwrap();
        assert!(brute_force_ground_truth(Metric::L2, &empty, &q, 1).is_err());
        assert!(brute_force_ground_truth(Metric::L2, &base, &empty, 1).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let rows = vec![vec![(0.0, 0u32)], vec![]];
        assert!(GroundTruth::from_rows(1, &rows).is_err());
    }

    #[test]
    fn mean_query_nn_distance_sqrt_for_l2() {
        let base = grid_base();
        let mut q = VecStore::new(2).unwrap();
        q.push(&[0.0, 0.5]).unwrap(); // squared dist to NN = 0.25, Euclidean 0.5
        let gt = brute_force_ground_truth(Metric::L2, &base, &q, 1).unwrap();
        assert!((gt.mean_query_nn_distance(Metric::L2) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cosine_ground_truth_prefers_aligned() {
        let base = VecStore::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.7]]).unwrap();
        let q = VecStore::from_rows(&[vec![1.0, 0.1]]).unwrap();
        let gt = brute_force_ground_truth(Metric::Cosine, &base, &q, 3).unwrap();
        assert_eq!(gt.ids(0)[0], 0);
        assert_eq!(gt.ids(0)[2], 1);
    }
}
