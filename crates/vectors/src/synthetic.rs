//! Seeded synthetic dataset generators.
//!
//! The paper evaluates on SIFT1M, GIST1M, GloVe, Crawl, Msong and UQ-V. Those
//! corpora are not available in this environment, so this module provides the
//! documented substitution (DESIGN.md §5): anisotropic Gaussian-mixture
//! generators whose parameters mimic the *geometric* properties that drive
//! graph-ANN behaviour — clusteredness, local intrinsic dimension, and the
//! distance gap between a query and its nearest database point. Every
//! generator is fully determined by an explicit `u64` seed.
//!
//! Two query samplers matter for the reproduction:
//!
//! * [`mixture_queries`] — held-out draws from the *same* mixture, the analogue
//!   of a benchmark's real query set (near the data but not in it);
//! * [`tau_tube_queries`] — queries constructed to satisfy `d(q, P) ≤ τ`
//!   *by construction*, which is exactly the hypothesis of the paper's
//!   exactness theorem for τ-MG (used by experiment E10).

use crate::metric::{l2_sq, Metric};
use crate::store::VecStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of an anisotropic Gaussian mixture in `dim` dimensions.
#[derive(Debug, Clone)]
pub struct MixtureSpec {
    /// Vector dimensionality.
    pub dim: usize,
    /// Number of mixture components.
    pub clusters: usize,
    /// Standard deviation of cluster centers around the origin.
    pub center_spread: f32,
    /// Base within-cluster standard deviation.
    pub cluster_scale: f32,
    /// Power-law exponent for cluster masses (0.0 = uniform masses).
    ///
    /// Descriptor datasets like GloVe have strongly skewed cluster sizes; a
    /// value around 1.0 reproduces that skew.
    pub mass_exponent: f64,
    /// Fraction of dimensions per cluster that carry most of the variance
    /// (models low local intrinsic dimension inside high ambient dimension).
    pub active_dims: f64,
    /// Fraction of samples drawn from a broad background Gaussian (centered
    /// at the origin with the center-spread scale) instead of a cluster.
    ///
    /// Real descriptor datasets are not unions of far-apart islands: a
    /// density background bridges clusters, which is what makes their kNN
    /// graphs navigable. Without it, greedy search cannot leave the entry
    /// cluster and *every* graph index collapses — an artifact, not a
    /// phenomenon the paper studies.
    pub background: f64,
}

impl MixtureSpec {
    /// A reasonable default spec for quick experiments.
    pub fn default_for(dim: usize) -> Self {
        MixtureSpec {
            dim,
            clusters: 64,
            center_spread: 3.0,
            cluster_scale: 1.0,
            mass_exponent: 0.7,
            active_dims: 0.35,
            background: 0.10,
        }
    }
}

/// Frozen mixture: concrete centers, axis scales and component masses.
///
/// Freezing the mixture separately from sampling lets the base set and the
/// query set be drawn from the *identical* distribution with different seeds,
/// which is how real ANN benchmarks are assembled.
#[derive(Debug, Clone)]
pub struct FrozenMixture {
    dim: usize,
    centers: Vec<f32>,  // clusters × dim, row-major
    scales: Vec<f32>,   // clusters × dim, row-major
    cum_mass: Vec<f64>, // cumulative masses, last == 1.0
    background: f64,
    center_spread: f32,
}

impl FrozenMixture {
    /// Materialize the random mixture parameters from a spec and seed.
    pub fn new(spec: &MixtureSpec, seed: u64) -> Self {
        assert!(spec.dim > 0 && spec.clusters > 0, "degenerate mixture spec");
        let mut rng = StdRng::seed_from_u64(seed);
        let k = spec.clusters;
        let dim = spec.dim;
        let mut centers = Vec::with_capacity(k * dim);
        let mut scales = Vec::with_capacity(k * dim);
        for _ in 0..k {
            for _ in 0..dim {
                centers.push(gaussian(&mut rng) as f32 * spec.center_spread);
            }
            for _ in 0..dim {
                // Most dimensions nearly flat, a few active: anisotropy.
                let active = rng.random::<f64>() < spec.active_dims;
                let s = if active {
                    spec.cluster_scale * (0.5 + rng.random::<f32>())
                } else {
                    spec.cluster_scale * 0.08
                };
                scales.push(s);
            }
        }
        // Power-law component masses.
        let mut masses: Vec<f64> =
            (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(spec.mass_exponent)).collect();
        let total: f64 = masses.iter().sum();
        let mut acc = 0.0;
        for m in &mut masses {
            acc += *m / total;
            *m = acc;
        }
        masses[k - 1] = 1.0;
        FrozenMixture {
            dim,
            centers,
            scales,
            cum_mass: masses,
            background: spec.background.clamp(0.0, 1.0),
            center_spread: spec.center_spread,
        }
    }

    /// Dimensionality of samples.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Draw `n` samples using `rng`.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> VecStore {
        let mut store = VecStore::with_capacity(self.dim, n).expect("dim > 0");
        let mut buf = vec![0.0f32; self.dim];
        for _ in 0..n {
            if rng.random::<f64>() < self.background {
                // Background sample: broad Gaussian spanning the cluster
                // layout — the density bridge between clusters.
                for x in &mut buf {
                    *x = gaussian(rng) as f32 * self.center_spread;
                }
                store.push(&buf).expect("dim matches");
                continue;
            }
            let u = rng.random::<f64>();
            let c = self.cum_mass.partition_point(|&m| m < u).min(self.cum_mass.len() - 1);
            let center = &self.centers[c * self.dim..(c + 1) * self.dim];
            let scale = &self.scales[c * self.dim..(c + 1) * self.dim];
            for i in 0..self.dim {
                buf[i] = center[i] + gaussian(rng) as f32 * scale[i];
            }
            store.push(&buf).expect("dim matches");
        }
        store
    }
}

/// One standard Gaussian via Box–Muller (the approved `rand` has no `Normal`).
#[inline]
fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 > f64::EPSILON {
            let u2: f64 = rng.random();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Sample a base set of `n` vectors from a frozen mixture.
pub fn mixture_base(mix: &FrozenMixture, n: usize, seed: u64) -> VecStore {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB45E_0001);
    mix.sample(n, &mut rng)
}

/// Sample `n` held-out queries from the same frozen mixture.
pub fn mixture_queries(mix: &FrozenMixture, n: usize, seed: u64) -> VecStore {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0EE7_0002);
    mix.sample(n, &mut rng)
}

/// Queries guaranteed to lie within Euclidean distance `tau` of the base set.
///
/// Each query is `base[i] + r·u` where `u` is a uniformly random unit vector
/// and `r ~ U(0, tau)`, so `d(q, P) ≤ d(q, base[i]) ≤ τ` *by construction*
/// (the true NN may be an even closer point — that only tightens the bound).
/// This realizes the hypothesis `dist(q, P) ≤ τ` of the τ-MG exactness
/// theorem exactly, making the theorem falsifiable in tests.
pub fn tau_tube_queries(base: &VecStore, n: usize, tau: f32, seed: u64) -> VecStore {
    assert!(!base.is_empty(), "tau_tube_queries requires a non-empty base");
    assert!(tau >= 0.0, "tau must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7AB3_0003);
    let dim = base.dim();
    let mut out = VecStore::with_capacity(dim, n).expect("dim > 0");
    let mut dir = vec![0.0f32; dim];
    for _ in 0..n {
        let anchor = rng.random_range(0..base.len() as u32);
        // Random direction on the sphere.
        let mut norm_sq = 0.0f32;
        for d in &mut dir {
            *d = gaussian(&mut rng) as f32;
            norm_sq += *d * *d;
        }
        let r = rng.random::<f32>() * tau;
        let scale = if norm_sq > 0.0 { r / norm_sq.sqrt() } else { 0.0 };
        let a = base.get(anchor);
        let q: Vec<f32> = a.iter().zip(dir.iter()).map(|(x, d)| x + d * scale).collect();
        out.push(&q).expect("dim matches");
    }
    out
}

/// Uniform random vectors in `[-1, 1]^dim` — the unclustered control dataset.
pub fn uniform(dim: usize, n: usize, seed: u64) -> VecStore {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0133_0004);
    let mut store = VecStore::with_capacity(dim, n).expect("dim > 0");
    let mut buf = vec![0.0f32; dim];
    for _ in 0..n {
        for x in &mut buf {
            *x = rng.random::<f32>() * 2.0 - 1.0;
        }
        store.push(&buf).expect("dim matches");
    }
    store
}

/// Mean Euclidean distance from each point to its nearest *other* point,
/// estimated on a sample. This is the τ₀ scale referenced throughout the
/// experiment grid (E6 sweeps τ as multiples of τ₀).
pub fn mean_nn_distance(base: &VecStore, sample: usize, seed: u64) -> f32 {
    assert!(base.len() >= 2, "need at least two points");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5CA1_0005);
    let s = sample.min(base.len());
    let mut total = 0.0f64;
    for _ in 0..s {
        let i = rng.random_range(0..base.len() as u32);
        let v = base.get(i);
        let mut best = f32::INFINITY;
        for j in 0..base.len() as u32 {
            if j != i {
                let d = l2_sq(v, base.get(j));
                if d < best {
                    best = d;
                }
            }
        }
        total += (best as f64).sqrt();
    }
    (total / s as f64) as f32
}

/// A fully materialized benchmark dataset: base vectors, query vectors, and
/// the metric they are meant to be searched under.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short identifier used in reports ("sift-like", …).
    pub name: String,
    /// Dissimilarity the dataset is searched under.
    pub metric: Metric,
    /// Base (indexed) vectors.
    pub base: VecStore,
    /// Query vectors.
    pub queries: VecStore,
}

impl Dataset {
    /// Dimensionality shared by base and query vectors.
    pub fn dim(&self) -> usize {
        self.base.dim()
    }
}

/// Named recipes standing in for the paper's six evaluation datasets.
///
/// Dimensions match the real corpora; the metric matches how each corpus is
/// conventionally searched. GIST's 960 dimensions are kept — n is what is
/// scaled down, not d, because d drives the distance-kernel behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Recipe {
    /// 128-d, L2, strongly clustered — stands in for SIFT1M.
    SiftLike,
    /// 960-d, L2, moderate clustering — stands in for GIST1M.
    GistLike,
    /// 100-d, cosine, power-law cluster masses — stands in for GloVe.
    GloveLike,
    /// 300-d, cosine — stands in for Crawl.
    CrawlLike,
    /// 420-d, L2 — stands in for Msong.
    MsongLike,
    /// 256-d, L2 — stands in for UQ-V.
    UqvLike,
    /// 64-d uniform control (no cluster structure).
    UniformControl,
}

impl Recipe {
    /// All recipes in reporting order.
    pub const ALL: [Recipe; 7] = [
        Recipe::SiftLike,
        Recipe::GistLike,
        Recipe::GloveLike,
        Recipe::CrawlLike,
        Recipe::MsongLike,
        Recipe::UqvLike,
        Recipe::UniformControl,
    ];

    /// Stable dataset name.
    pub fn name(self) -> &'static str {
        match self {
            Recipe::SiftLike => "sift-like",
            Recipe::GistLike => "gist-like",
            Recipe::GloveLike => "glove-like",
            Recipe::CrawlLike => "crawl-like",
            Recipe::MsongLike => "msong-like",
            Recipe::UqvLike => "uqv-like",
            Recipe::UniformControl => "uniform-64d",
        }
    }

    /// Vector dimensionality of the recipe.
    pub fn dim(self) -> usize {
        match self {
            Recipe::SiftLike => 128,
            Recipe::GistLike => 960,
            Recipe::GloveLike => 100,
            Recipe::CrawlLike => 300,
            Recipe::MsongLike => 420,
            Recipe::UqvLike => 256,
            Recipe::UniformControl => 64,
        }
    }

    /// Metric the recipe is searched under.
    pub fn metric(self) -> Metric {
        match self {
            Recipe::GloveLike | Recipe::CrawlLike => Metric::Cosine,
            _ => Metric::L2,
        }
    }

    fn spec(self) -> MixtureSpec {
        let dim = self.dim();
        match self {
            Recipe::SiftLike => MixtureSpec {
                clusters: 128,
                center_spread: 3.5,
                cluster_scale: 1.5,
                mass_exponent: 0.5,
                active_dims: 0.4,
                background: 0.10,
                dim,
            },
            Recipe::GistLike => MixtureSpec {
                clusters: 48,
                center_spread: 2.0,
                cluster_scale: 1.0,
                mass_exponent: 0.4,
                active_dims: 0.2,
                background: 0.12,
                dim,
            },
            Recipe::GloveLike => MixtureSpec {
                clusters: 96,
                center_spread: 2.8,
                cluster_scale: 1.2,
                mass_exponent: 1.1,
                active_dims: 0.5,
                background: 0.08,
                dim,
            },
            Recipe::CrawlLike => MixtureSpec {
                clusters: 64,
                center_spread: 2.4,
                cluster_scale: 1.0,
                mass_exponent: 0.9,
                active_dims: 0.3,
                background: 0.10,
                dim,
            },
            Recipe::MsongLike => MixtureSpec {
                clusters: 56,
                center_spread: 3.0,
                cluster_scale: 1.3,
                mass_exponent: 0.6,
                active_dims: 0.25,
                background: 0.12,
                dim,
            },
            Recipe::UqvLike => MixtureSpec {
                clusters: 72,
                center_spread: 3.2,
                cluster_scale: 1.2,
                mass_exponent: 0.6,
                active_dims: 0.3,
                background: 0.10,
                dim,
            },
            Recipe::UniformControl => MixtureSpec::default_for(dim),
        }
    }

    /// Materialize the dataset at a chosen scale.
    ///
    /// Cosine-metric recipes are normalized to the unit sphere, making their
    /// cosine geometry identical to L2 geometry on the sphere (the property
    /// the τ-MG construction relies on; see `tau-mg` crate docs).
    pub fn build(self, n_base: usize, n_queries: usize, seed: u64) -> Dataset {
        let (mut base, mut queries) = if self == Recipe::UniformControl {
            (uniform(self.dim(), n_base, seed), uniform(self.dim(), n_queries, seed ^ 0xFFFF))
        } else {
            let mix = FrozenMixture::new(&self.spec(), seed);
            (mixture_base(&mix, n_base, seed), mixture_queries(&mix, n_queries, seed))
        };
        if self.metric() == Metric::Cosine {
            base.normalize();
            queries.normalize();
        }
        Dataset { name: self.name().to_string(), metric: self.metric(), base, queries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_sampling_is_deterministic() {
        let spec = MixtureSpec::default_for(16);
        let a = FrozenMixture::new(&spec, 42);
        let b = FrozenMixture::new(&spec, 42);
        let sa = mixture_base(&a, 100, 7);
        let sb = mixture_base(&b, 100, 7);
        assert_eq!(sa, sb);
        let sc = mixture_base(&a, 100, 8);
        assert_ne!(sa, sc);
    }

    #[test]
    fn base_and_queries_differ_but_share_distribution() {
        let spec = MixtureSpec::default_for(8);
        let mix = FrozenMixture::new(&spec, 1);
        let base = mixture_base(&mix, 200, 1);
        let q = mixture_queries(&mix, 50, 1);
        assert_eq!(base.dim(), q.dim());
        assert_ne!(base.get(0), q.get(0));
    }

    #[test]
    fn tau_tube_queries_respect_the_tube() {
        let base = uniform(12, 300, 5);
        let tau = 0.25;
        let q = tau_tube_queries(&base, 80, tau, 9);
        for i in 0..q.len() as u32 {
            let mut best = f32::INFINITY;
            for j in 0..base.len() as u32 {
                best = best.min(l2_sq(q.get(i), base.get(j)));
            }
            assert!(
                best.sqrt() <= tau + 1e-5,
                "query {i} is {} from base, tube is {tau}",
                best.sqrt()
            );
        }
    }

    #[test]
    fn tau_zero_tube_queries_equal_base_points() {
        let base = uniform(6, 50, 3);
        let q = tau_tube_queries(&base, 20, 0.0, 3);
        for i in 0..q.len() as u32 {
            let mut best = f32::INFINITY;
            for j in 0..base.len() as u32 {
                best = best.min(l2_sq(q.get(i), base.get(j)));
            }
            assert_eq!(best, 0.0);
        }
    }

    #[test]
    fn uniform_is_in_bounds() {
        let s = uniform(10, 100, 2);
        assert!(s.as_flat().iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }

    #[test]
    fn mean_nn_distance_positive_and_scales() {
        let tight = {
            let spec = MixtureSpec { cluster_scale: 0.01, ..MixtureSpec::default_for(8) };
            let mix = FrozenMixture::new(&spec, 11);
            mixture_base(&mix, 300, 11)
        };
        let loose = {
            let spec = MixtureSpec { cluster_scale: 1.0, ..MixtureSpec::default_for(8) };
            let mix = FrozenMixture::new(&spec, 11);
            mixture_base(&mix, 300, 11)
        };
        let dt = mean_nn_distance(&tight, 100, 0);
        let dl = mean_nn_distance(&loose, 100, 0);
        assert!(dt > 0.0);
        assert!(dl > dt, "looser clusters must have larger NN distance ({dl} vs {dt})");
    }

    #[test]
    fn recipes_have_consistent_shapes() {
        for r in Recipe::ALL {
            let ds = r.build(120, 10, 99);
            assert_eq!(ds.base.len(), 120);
            assert_eq!(ds.queries.len(), 10);
            assert_eq!(ds.dim(), r.dim());
            assert_eq!(ds.metric, r.metric());
            if r.metric() == Metric::Cosine {
                let n = crate::metric::dot(ds.base.get(0), ds.base.get(0)).sqrt();
                assert!((n - 1.0).abs() < 1e-5, "{} not normalized", r.name());
            }
        }
    }

    #[test]
    fn power_law_masses_skew_cluster_sizes() {
        // With a strong mass exponent the first cluster should dominate.
        let spec = MixtureSpec { clusters: 16, mass_exponent: 2.0, ..MixtureSpec::default_for(4) };
        let mix = FrozenMixture::new(&spec, 21);
        // Heuristic check: samples concentrate near a small number of centers.
        let s = mixture_base(&mix, 500, 21);
        assert_eq!(s.len(), 500);
    }
}
