//! Bounded top-k selection over `(distance, id)` pairs.
//!
//! A tiny binary max-heap specialized to `(f32, u32)` with `f32::total_cmp`
//! ordering. Shared by ground-truth computation and brute-force kNN-graph
//! construction; search structures use the sorted-array pool in `ann-graph`
//! instead (different access pattern).

/// Collects the `k` smallest `(distance, id)` pairs pushed into it.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    /// Max-heap on distance: `heap[0]` is the current worst of the best-k.
    heap: Vec<(f32, u32)>,
}

impl TopK {
    /// Create a collector for the `k` smallest entries (`k > 0`).
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopK { k, heap: Vec::with_capacity(k) }
    }

    /// Number of entries currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries have been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current admission threshold: entries with distance ≥ this are rejected
    /// once the collector is full. `f32::INFINITY` while not full.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap[0].0
        }
    }

    /// Offer an entry; keeps it only if it is among the k smallest so far.
    #[inline]
    pub fn push(&mut self, dist: f32, id: u32) {
        if self.heap.len() < self.k {
            self.heap.push((dist, id));
            self.sift_up(self.heap.len() - 1);
        } else if dist < self.heap[0].0 {
            self.heap[0] = (dist, id);
            self.sift_down(0);
        }
    }

    /// Consume the collector, returning entries sorted by ascending distance
    /// (ties broken by ascending id for determinism).
    pub fn into_sorted(mut self) -> Vec<(f32, u32)> {
        self.heap
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        self.heap
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].0.total_cmp(&self.heap[parent].0).is_gt() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < n && self.heap[l].0.total_cmp(&self.heap[largest].0).is_gt() {
                largest = l;
            }
            if r < n && self.heap[r].0.total_cmp(&self.heap[largest].0).is_gt() {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0, 0.5].iter().enumerate() {
            t.push(*d, i as u32);
        }
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|e| e.1).collect::<Vec<_>>(), vec![5, 1, 3]);
        assert_eq!(out[0].0, 0.5);
    }

    #[test]
    fn fewer_than_k_entries() {
        let mut t = TopK::new(10);
        t.push(2.0, 0);
        t.push(1.0, 1);
        let out = t.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (1.0, 1));
    }

    #[test]
    fn threshold_tracks_worst_of_best() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(3.0, 0);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(1.0, 1);
        assert_eq!(t.threshold(), 3.0);
        t.push(2.0, 2);
        assert_eq!(t.threshold(), 2.0);
        t.push(9.0, 3); // rejected
        assert_eq!(t.threshold(), 2.0);
    }

    #[test]
    fn ties_break_by_id() {
        let mut t = TopK::new(4);
        t.push(1.0, 7);
        t.push(1.0, 2);
        t.push(1.0, 5);
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|e| e.1).collect::<Vec<_>>(), vec![2, 5, 7]);
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        let mut s = 0x1234_5678_u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 10_000) as f32 / 100.0
        };
        let data: Vec<f32> = (0..500).map(|_| next()).collect();
        for k in [1, 2, 7, 100, 500] {
            let mut t = TopK::new(k);
            for (i, &d) in data.iter().enumerate() {
                t.push(d, i as u32);
            }
            let got: Vec<f32> = t.into_sorted().iter().map(|e| e.0).collect();
            let mut want = data.clone();
            want.sort_by(f32::total_cmp);
            want.truncate(k);
            assert_eq!(got, want, "k = {k}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }
}
