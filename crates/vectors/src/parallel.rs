//! Minimal data-parallel substrate built on scoped threads.
//!
//! The approved dependency set contains no task-parallelism crate (no rayon),
//! so index construction and ground-truth computation use this small
//! work-block scheduler instead: worker threads pull fixed-size blocks of the
//! index range from an atomic cursor, which gives dynamic load balancing
//! (important for NN-Descent and graph pruning, whose per-item cost varies)
//! with no allocation in steady state.
//!
//! Queries in the evaluation harness are deliberately *not* parallelized —
//! the paper measures single-thread search throughput.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Size of the work block each worker claims per cursor increment.
///
/// Large enough to amortize the atomic, small enough to balance skewed work.
const BLOCK: usize = 64;

/// Number of worker threads to use for parallel sections.
///
/// Honors the `ANN_THREADS` environment variable when set to a positive
/// integer; otherwise uses the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("ANN_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f(i)` for every `i in 0..n` on `threads` workers with dynamic
/// block scheduling. Falls back to a plain loop when `threads <= 1` or the
/// range is small enough that spawning would dominate.
pub fn parallel_for<F>(n: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if threads <= 1 || n <= BLOCK {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(n.div_ceil(BLOCK));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let start = cursor.fetch_add(BLOCK, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + BLOCK).min(n);
                for i in start..end {
                    f(i);
                }
            });
        }
    });
}

/// Map `f` over `0..n` in parallel, returning results in index order.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= BLOCK {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::with_capacity(n.div_ceil(BLOCK)));
    let workers = threads.min(n.div_ceil(BLOCK));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let start = cursor.fetch_add(BLOCK, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + BLOCK).min(n);
                let block: Vec<T> = (start..end).map(&f).collect();
                out.lock().unwrap().push((start, block));
            });
        }
    });
    let mut blocks = out.into_inner().unwrap();
    blocks.sort_unstable_by_key(|(s, _)| *s);
    let mut result = Vec::with_capacity(n);
    for (_, mut b) in blocks {
        result.append(&mut b);
    }
    result
}

/// Apply `f(chunk_index, chunk)` to disjoint mutable chunks of `data` in
/// parallel. Chunks are `chunk_len` items each (last one may be shorter).
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if threads <= 1 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }
    type Slot<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Slot<'_, T>> = chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let workers = threads.min(slots.len());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= slots.len() {
                    break;
                }
                if let Some((ci, chunk)) = slots[idx].lock().unwrap().take() {
                    f(ci, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(n, 8, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_serial_fallback() {
        let sum = AtomicU64::new(0);
        parallel_for(10, 1, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let v = parallel_map(5000, 8, |i| i * 2);
        assert_eq!(v.len(), 5000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn parallel_map_small_input() {
        let v = parallel_map(3, 8, |i| i + 1);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn parallel_map_empty() {
        let v: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(v.is_empty());
    }

    #[test]
    fn parallel_chunks_mut_touches_all() {
        let mut data = vec![0u32; 1000];
        parallel_chunks_mut(&mut data, 37, 8, |ci, chunk| {
            for x in chunk.iter_mut() {
                *x = ci as u32 + 1;
            }
        });
        assert!(data.iter().all(|&x| x > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[999], (999 / 37) as u32 + 1);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
