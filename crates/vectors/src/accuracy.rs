//! Accuracy metrics: recall@k and relative distance error (rderr@k), as
//! defined in the paper's preliminaries and used by every experiment.

use crate::gt::GroundTruth;

/// `recall@k` for one query: fraction of the exact top-k that the returned
/// candidate list contains.
///
/// Follows the standard benchmark convention (also used by the paper): the
/// intersection of the returned ids with the exact top-k id set, divided by k.
/// Only the first `k` returned ids are considered.
pub fn recall_at_k(gt_ids: &[u32], returned: &[u32], k: usize) -> f64 {
    assert!(k > 0 && gt_ids.len() >= k, "ground truth shallower than k");
    let truth = &gt_ids[..k];
    let got = &returned[..returned.len().min(k)];
    let mut hits = 0usize;
    for id in got {
        // k is small (≤ a few hundred); linear scan beats hashing here.
        if truth.contains(id) {
            hits += 1;
        }
    }
    hits as f64 / k as f64
}

/// Mean `recall@k` over all queries.
///
/// `results[q]` are the ids returned for query `q`, best-first.
pub fn mean_recall_at_k(gt: &GroundTruth, results: &[Vec<u32>], k: usize) -> f64 {
    assert_eq!(gt.n_queries(), results.len(), "result rows != queries");
    if results.is_empty() {
        return 0.0;
    }
    let sum: f64 = results.iter().enumerate().map(|(q, r)| recall_at_k(gt.ids(q), r, k)).sum();
    sum / results.len() as f64
}

/// Relative distance error at k for one query:
/// `mean_i ( d(q, returned_i) / d(q, exact_i) - 1 )`, clamped at 0.
///
/// Distances must be in the same (possibly squared) units for numerator and
/// denominator, so the ratio is scale-free. When an exact distance is zero
/// (query coincides with a base point) the pair contributes 0 if the returned
/// distance is also zero and is skipped otherwise.
pub fn rderr_at_k(gt_dists: &[f32], returned_dists: &[f32], k: usize) -> f64 {
    assert!(k > 0 && gt_dists.len() >= k, "ground truth shallower than k");
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for (i, &exact) in gt_dists.iter().take(k).enumerate() {
        let exact = exact as f64;
        let got = returned_dists.get(i).copied().unwrap_or(f32::INFINITY) as f64;
        if exact <= 0.0 {
            if got <= 0.0 {
                counted += 1;
            }
            continue;
        }
        total += (got / exact - 1.0).max(0.0);
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Mean rderr@k over all queries.
pub fn mean_rderr_at_k(gt: &GroundTruth, result_dists: &[Vec<f32>], k: usize) -> f64 {
    assert_eq!(gt.n_queries(), result_dists.len(), "result rows != queries");
    if result_dists.is_empty() {
        return 0.0;
    }
    let sum: f64 = result_dists
        .iter()
        .enumerate()
        .map(|(q, r)| rderr_at_k(gt.dists(q), r, k))
        .sum();
    sum / result_dists.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gt::GroundTruth;

    #[test]
    fn perfect_recall() {
        assert_eq!(recall_at_k(&[1, 2, 3], &[3, 1, 2], 3), 1.0);
    }

    #[test]
    fn partial_recall() {
        assert_eq!(recall_at_k(&[1, 2, 3, 4], &[1, 9, 3, 8], 4), 0.5);
    }

    #[test]
    fn short_result_list_counts_missing_as_misses() {
        assert_eq!(recall_at_k(&[1, 2, 3, 4], &[1], 4), 0.25);
    }

    #[test]
    fn only_first_k_results_count() {
        // 5th returned id is the right answer but k = 1.
        assert_eq!(recall_at_k(&[7, 1, 2, 3, 4], &[9, 9, 9, 9, 7], 1), 0.0);
    }

    #[test]
    fn rderr_zero_for_exact_results() {
        assert_eq!(rderr_at_k(&[1.0, 2.0], &[1.0, 2.0], 2), 0.0);
    }

    #[test]
    fn rderr_positive_for_worse_results() {
        let e = rderr_at_k(&[1.0, 2.0], &[2.0, 2.0], 2);
        assert!((e - 0.5).abs() < 1e-9); // (2/1-1 + 2/2-1)/2
    }

    #[test]
    fn rderr_handles_zero_exact_distance() {
        assert_eq!(rderr_at_k(&[0.0, 1.0], &[0.0, 1.0], 2), 0.0);
        // Zero exact but non-zero returned: pair skipped, second pair exact.
        assert_eq!(rderr_at_k(&[0.0, 1.0], &[0.5, 1.0], 2), 0.0);
    }

    #[test]
    fn rderr_missing_results_are_infinite_cost() {
        assert!(rderr_at_k(&[1.0, 1.0], &[1.0], 2).is_infinite());
    }

    #[test]
    fn mean_metrics_aggregate() {
        let gt = GroundTruth::from_rows(2, &[vec![(1.0, 0), (2.0, 1)], vec![(1.0, 5), (3.0, 6)]])
            .unwrap();
        let results = vec![vec![0, 1], vec![6, 7]];
        let r = mean_recall_at_k(&gt, &results, 2);
        assert!((r - 0.75).abs() < 1e-9); // (1.0 + 0.5) / 2
        let dists = vec![vec![1.0, 2.0], vec![3.0, 6.0]];
        let e = mean_rderr_at_k(&gt, &dists, 2);
        assert!((e - (0.0 + (2.0 + 1.0) / 2.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "shallower")]
    fn recall_requires_deep_enough_gt() {
        recall_at_k(&[1], &[1], 2);
    }
}
