//! Deterministic external-id → shard placement.
//!
//! Sharded serving partitions a corpus across `N` independent indexes; the
//! router decides, from nothing but the stable external id, which shard owns
//! a point. The mapping must be
//!
//! * **deterministic** — inserts, deletes and recovery all re-derive the
//!   owning shard from the id alone, with no placement table to persist;
//! * **uniform** — shard sizes stay balanced so per-shard build and
//!   compaction costs are `~1/N` of the whole corpus;
//! * **stable under `N = 1`** — a single shard owns everything, making the
//!   unsharded service the degenerate case of the sharded one.
//!
//! The hash is the splitmix64 finalizer: a fixed bijective mixer whose low
//! bits are well distributed even for sequential ids (the common case, since
//! the writer allocates external ids by incrementing a counter).

/// Bijective 64-bit mixer (splitmix64 finalizer, Vigna's constants).
///
/// Sequential inputs — the writer hands out external ids `0, 1, 2, …` — map
/// to effectively independent outputs, which is exactly what placement needs.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Shard owning `external` in a set of `n_shards` shards.
///
/// Returns `0` for `n_shards <= 1` so the single-shard case degenerates to
/// "one shard owns everything" rather than dividing by zero.
#[inline]
#[must_use]
pub fn shard_of(external: u64, n_shards: usize) -> usize {
    if n_shards <= 1 {
        return 0;
    }
    // Widening multiply maps the hash onto [0, n_shards) without modulo
    // bias; n_shards is far below 2^32 in practice so the bias of the
    // plain `%` would be negligible anyway, but this is also faster.
    let h = mix64(external) as u128;
    ((h.wrapping_mul(n_shards as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        for id in [0_u64, 1, 17, u64::MAX] {
            assert_eq!(shard_of(id, 1), 0);
            assert_eq!(shard_of(id, 0), 0);
        }
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for n in 1..=8 {
            for id in 0..10_000_u64 {
                let s = shard_of(id, n);
                assert!(s < n.max(1));
                assert_eq!(s, shard_of(id, n), "same id must route identically");
            }
        }
    }

    #[test]
    fn sequential_ids_balance_across_shards() {
        // The writer allocates ids sequentially; the mixer must still spread
        // them evenly. Allow ±25% of the ideal share over 40k ids.
        for n in [2_usize, 3, 4, 7] {
            let mut counts = vec![0_usize; n];
            let total = 40_000_u64;
            for id in 0..total {
                counts[shard_of(id, n)] += 1;
            }
            let ideal = total as usize / n;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    c > ideal * 3 / 4 && c < ideal * 5 / 4,
                    "shard {s} holds {c} of {total} ids (ideal {ideal}) for n={n}"
                );
            }
        }
    }

    #[test]
    fn mixer_is_not_identity_like() {
        // Adjacent inputs should differ in many output bits (avalanche).
        let mut min_flips = u32::MAX;
        for id in 0..1_000_u64 {
            let flips = (mix64(id) ^ mix64(id + 1)).count_ones();
            min_flips = min_flips.min(flips);
        }
        assert!(min_flips >= 10, "weak avalanche: only {min_flips} bit flips");
    }
}
