//! Error type shared by the whole workspace.

use std::fmt;

/// Which validation step rejected a persisted artifact.
///
/// File-level loaders attach this to [`AnnError::CorruptFile`] so operators
/// can tell a torn write (checksum) from a format skew (version) from a
/// hostile or mis-addressed file (magic) without parsing error prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityCheck {
    /// File shorter than the minimal fixed layout (header + trailer).
    Truncated,
    /// Magic number mismatch: not this format at all.
    Magic,
    /// Recognized format, unsupported version.
    Version,
    /// Whole-file checksum mismatch: torn/short write or bit rot.
    Checksum,
    /// A size, count, or range field contradicts the payload.
    Bounds,
    /// An embedded payload failed its own validation.
    Payload,
}

impl IntegrityCheck {
    /// Stable lowercase name for logs and error text.
    pub fn name(self) -> &'static str {
        match self {
            IntegrityCheck::Truncated => "truncated",
            IntegrityCheck::Magic => "magic",
            IntegrityCheck::Version => "version",
            IntegrityCheck::Checksum => "checksum",
            IntegrityCheck::Bounds => "bounds",
            IntegrityCheck::Payload => "payload",
        }
    }
}

impl fmt::Display for IntegrityCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Context for a corrupt persisted file: where it was, which generation it
/// claimed to be (when the container is generation-addressed), and which
/// validation step rejected it.
#[derive(Debug)]
pub struct CorruptFileContext {
    /// Path of the offending file.
    pub path: std::path::PathBuf,
    /// Generation the file was addressed as, if any.
    pub generation: Option<u64>,
    /// The validation step that failed.
    pub check: IntegrityCheck,
    /// Human-readable detail from the failing check.
    pub detail: String,
}

/// Context for a corrupt write-ahead-log record or segment: which segment
/// file, the last LSN that was still readable (if any), and which validation
/// step rejected the bytes.
#[derive(Debug)]
pub struct CorruptWalContext {
    /// Path of the offending segment file.
    pub path: std::path::PathBuf,
    /// Last LSN successfully decoded before the failure, if any.
    pub lsn: Option<u64>,
    /// The validation step that failed.
    pub check: IntegrityCheck,
    /// Human-readable detail from the failing check.
    pub detail: String,
}

/// Errors surfaced by dataset handling, index construction and persistence.
#[derive(Debug)]
pub enum AnnError {
    /// A vector had a different dimensionality than the store it was added to.
    DimensionMismatch {
        /// Dimensionality of the store.
        expected: usize,
        /// Dimensionality of the offending vector.
        got: usize,
    },
    /// An operation required a non-empty dataset.
    EmptyDataset,
    /// A node/vector id was out of range.
    IdOutOfRange {
        /// The offending id.
        id: u64,
        /// Number of elements available.
        len: u64,
    },
    /// `k` (or another size parameter) exceeded what the dataset can provide.
    InvalidParameter(String),
    /// A persisted artifact failed validation (bad magic, version, checksum…).
    CorruptIndex(String),
    /// A persisted *file* failed validation, with path/generation/check
    /// context attached (the file-level sibling of [`AnnError::CorruptIndex`]).
    CorruptFile(Box<CorruptFileContext>),
    /// A write-ahead-log segment or record failed validation, with
    /// path/LSN/check context attached. Distinct from
    /// [`AnnError::CorruptFile`] because journal damage is often *expected*
    /// (a torn tail after a crash) and handled by truncation rather than
    /// quarantine.
    CorruptWal(Box<CorruptWalContext>),
    /// A per-tenant quota rejected the operation. This is backpressure, not
    /// failure: the caller chose the limit, the service enforced it, and
    /// the right reaction is retry-later or shed — never a panic.
    QuotaExceeded {
        /// Collection (tenant) whose quota tripped.
        collection: String,
        /// Which resource was exhausted (`"vectors"`, `"inflight"`, …).
        resource: &'static str,
        /// The configured ceiling.
        limit: u64,
        /// Current usage that made the operation exceed `limit`.
        in_use: u64,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl AnnError {
    /// Build a [`AnnError::CorruptFile`] with full context.
    pub fn corrupt_file(
        path: impl Into<std::path::PathBuf>,
        generation: Option<u64>,
        check: IntegrityCheck,
        detail: impl Into<String>,
    ) -> AnnError {
        AnnError::CorruptFile(Box::new(CorruptFileContext {
            path: path.into(),
            generation,
            check,
            detail: detail.into(),
        }))
    }

    /// Build a [`AnnError::CorruptWal`] with full context.
    pub fn corrupt_wal(
        path: impl Into<std::path::PathBuf>,
        lsn: Option<u64>,
        check: IntegrityCheck,
        detail: impl Into<String>,
    ) -> AnnError {
        AnnError::CorruptWal(Box::new(CorruptWalContext {
            path: path.into(),
            lsn,
            check,
            detail: detail.into(),
        }))
    }
}

impl fmt::Display for AnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: store is {expected}-d, vector is {got}-d")
            }
            AnnError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            AnnError::IdOutOfRange { id, len } => {
                write!(f, "id {id} out of range (len {len})")
            }
            AnnError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            AnnError::CorruptIndex(msg) => write!(f, "corrupt index: {msg}"),
            AnnError::CorruptFile(ctx) => {
                write!(f, "corrupt file {}", ctx.path.display())?;
                if let Some(generation) = ctx.generation {
                    write!(f, " (generation {generation})")?;
                }
                write!(f, ": {} check failed: {}", ctx.check, ctx.detail)
            }
            AnnError::CorruptWal(ctx) => {
                write!(f, "corrupt wal segment {}", ctx.path.display())?;
                if let Some(lsn) = ctx.lsn {
                    write!(f, " (after lsn {lsn})")?;
                }
                write!(f, ": {} check failed: {}", ctx.check, ctx.detail)
            }
            AnnError::QuotaExceeded { collection, resource, limit, in_use } => {
                write!(
                    f,
                    "quota exceeded for collection {collection:?}: {resource} limit {limit} (in use: {in_use})"
                )
            }
            AnnError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for AnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AnnError {
    fn from(e: std::io::Error) -> Self {
        AnnError::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, AnnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = AnnError::DimensionMismatch { expected: 128, got: 64 };
        assert!(e.to_string().contains("128"));
        assert!(e.to_string().contains("64"));
        let e = AnnError::IdOutOfRange { id: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        let e = AnnError::CorruptIndex("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn corrupt_file_context_is_rendered() {
        let e = AnnError::corrupt_file(
            "/data/gen-7.snap",
            Some(7),
            IntegrityCheck::Checksum,
            "trailer mismatch",
        );
        let s = e.to_string();
        assert!(s.contains("/data/gen-7.snap"), "{s}");
        assert!(s.contains("generation 7"), "{s}");
        assert!(s.contains("checksum check failed"), "{s}");
        assert!(s.contains("trailer mismatch"), "{s}");
        let e = AnnError::corrupt_file("f.bin", None, IntegrityCheck::Magic, "not GRF1");
        assert!(!e.to_string().contains("generation"), "{e}");
    }

    #[test]
    fn corrupt_wal_context_is_rendered() {
        let e = AnnError::corrupt_wal(
            "/data/wal-00000000000000000003.wal",
            Some(9),
            IntegrityCheck::Checksum,
            "record trailer mismatch",
        );
        let s = e.to_string();
        assert!(s.contains("wal-00000000000000000003.wal"), "{s}");
        assert!(s.contains("after lsn 9"), "{s}");
        assert!(s.contains("checksum check failed"), "{s}");
        assert!(s.contains("record trailer mismatch"), "{s}");
        let e = AnnError::corrupt_wal("w.wal", None, IntegrityCheck::Magic, "not WAL1");
        assert!(!e.to_string().contains("after lsn"), "{e}");
    }

    #[test]
    fn quota_exceeded_is_rendered_with_context() {
        let e = AnnError::QuotaExceeded {
            collection: "tenant-a".into(),
            resource: "inflight",
            limit: 8,
            in_use: 8,
        };
        let s = e.to_string();
        assert!(s.contains("tenant-a"), "{s}");
        assert!(s.contains("inflight"), "{s}");
        assert!(s.contains("limit 8"), "{s}");
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: AnnError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
