//! Error type shared by the whole workspace.

use std::fmt;

/// Errors surfaced by dataset handling, index construction and persistence.
#[derive(Debug)]
pub enum AnnError {
    /// A vector had a different dimensionality than the store it was added to.
    DimensionMismatch {
        /// Dimensionality of the store.
        expected: usize,
        /// Dimensionality of the offending vector.
        got: usize,
    },
    /// An operation required a non-empty dataset.
    EmptyDataset,
    /// A node/vector id was out of range.
    IdOutOfRange {
        /// The offending id.
        id: u64,
        /// Number of elements available.
        len: u64,
    },
    /// `k` (or another size parameter) exceeded what the dataset can provide.
    InvalidParameter(String),
    /// A persisted artifact failed validation (bad magic, version, checksum…).
    CorruptIndex(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for AnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: store is {expected}-d, vector is {got}-d")
            }
            AnnError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            AnnError::IdOutOfRange { id, len } => {
                write!(f, "id {id} out of range (len {len})")
            }
            AnnError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            AnnError::CorruptIndex(msg) => write!(f, "corrupt index: {msg}"),
            AnnError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for AnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AnnError {
    fn from(e: std::io::Error) -> Self {
        AnnError::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, AnnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = AnnError::DimensionMismatch { expected: 128, got: 64 };
        assert!(e.to_string().contains("128"));
        assert!(e.to_string().contains("64"));
        let e = AnnError::IdOutOfRange { id: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        let e = AnnError::CorruptIndex("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: AnnError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
