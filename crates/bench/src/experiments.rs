//! The experiment grid (DESIGN.md §6): one function per paper table/figure.
//!
//! Every function is self-contained — prepares its data, measures, prints a
//! markdown report to stdout *and* writes the full curve data as CSV under
//! `results/` — so `repro_all` is just the sequence of calls and each
//! `repro_e*` binary is a one-liner.

use crate::{build_algo, prepare, prepare_sized, Algo, ReproData, Scale, REPRO_SEED};
use ann_eval::{
    banner, fmt_f, ndc_at_recall, qps_at_recall, run_sweep, write_report, CsvTable, MarkdownTable,
    SweepConfig, SweepPoint,
};
use ann_graph::{AnnIndex, GraphStats, QueryResult, Scratch};
use ann_vectors::synthetic::{tau_tube_queries, Recipe};
use ann_vectors::{brute_force_ground_truth, Metric};
use std::sync::Arc;
use tau_mg::{build_tau_mg, build_tau_mng, TauMgParams, TauMngParams, TauSearchOptions};

/// Recall targets the headline tables are read at.
const TARGETS: [f64; 3] = [0.90, 0.95, 0.99];

fn sweep_algo(data: &ReproData, algo: Algo, k: usize) -> Vec<SweepPoint> {
    let built = build_algo(algo, data);
    run_sweep(built.index.as_ref(), &data.queries, &data.gt, &SweepConfig::standard(k))
}

fn curves_to_csv(name: &str, rows: &[(String, String, Vec<SweepPoint>)]) {
    let mut csv = CsvTable::new(&[
        "dataset", "algo", "L", "recall", "rderr", "qps", "ndc", "hops", "skipped",
    ]);
    for (dataset, algo, points) in rows {
        for p in points {
            csv.push_row(&[
                dataset.clone(),
                algo.clone(),
                p.l.to_string(),
                fmt_f(p.recall, 5),
                format!("{:.3e}", p.rderr),
                fmt_f(p.qps, 1),
                fmt_f(p.ndc, 1),
                fmt_f(p.hops, 1),
                fmt_f(p.skipped, 1),
            ]);
        }
    }
    let path = write_report(&format!("{name}.csv"), &csv.render()).expect("write csv");
    println!("curves written to {}", path.display());
}

/// E1 — dataset statistics table (the paper's Table 1 analogue).
pub fn e1_datasets(scale: Scale) -> String {
    let mut out = banner("E1: dataset statistics", "synthetic stand-ins at repro scale");
    let mut table =
        MarkdownTable::new(vec!["dataset", "n", "dim", "metric", "queries", "mean d(q,P)", "tau0"]);
    let mut csv = CsvTable::new(&["dataset", "n", "dim", "metric", "queries", "mean_dqp", "tau0"]);
    for recipe in scale.recipes() {
        let data = prepare(recipe, scale);
        let dqp = data.gt.mean_query_nn_distance(data.metric);
        table.push_row(vec![
            data.name.clone(),
            data.base.len().to_string(),
            data.base.dim().to_string(),
            data.metric.name().to_string(),
            data.queries.len().to_string(),
            fmt_f(dqp, 4),
            fmt_f(data.tau0 as f64, 4),
        ]);
        csv.push_row(&[
            data.name.clone(),
            data.base.len().to_string(),
            data.base.dim().to_string(),
            data.metric.name().to_string(),
            data.queries.len().to_string(),
            fmt_f(dqp, 6),
            fmt_f(data.tau0 as f64, 6),
        ]);
    }
    let path = write_report("e1_datasets.csv", &csv.render()).expect("write csv");
    out.push_str(&table.render());
    out.push_str(&format!("csv: {}\n", path.display()));
    out
}

/// E2 — construction time and index size (the paper's Table 2 analogue).
pub fn e2_construction(scale: Scale) -> String {
    let mut out = banner(
        "E2: index construction",
        "build time includes the shared kNN graph for the pipelines that consume it",
    );
    let mut csv = CsvTable::new(&[
        "dataset",
        "algo",
        "build_seconds",
        "index_mb",
        "avg_degree",
        "max_degree",
    ]);
    for recipe in scale.recipes() {
        let data = prepare(recipe, scale);
        let mut table =
            MarkdownTable::new(vec!["algo", "build s", "index MB", "avg deg", "max deg"]);
        for algo in Algo::ALL {
            let report = crate::build_algo_fresh(algo, &data).report;
            table.push_row(vec![
                algo.name().to_string(),
                fmt_f(report.seconds, 2),
                fmt_f(report.memory_bytes as f64 / (1024.0 * 1024.0), 2),
                fmt_f(report.graph.avg_degree, 1),
                report.graph.max_degree.to_string(),
            ]);
            csv.push_row(&[
                data.name.clone(),
                algo.name().to_string(),
                fmt_f(report.seconds, 3),
                fmt_f(report.memory_bytes as f64 / (1024.0 * 1024.0), 3),
                fmt_f(report.graph.avg_degree, 2),
                report.graph.max_degree.to_string(),
            ]);
        }
        out.push_str(&format!("\n### {}\n{}", data.name, table.render()));
    }
    let path = write_report("e2_construction.csv", &csv.render()).expect("write csv");
    out.push_str(&format!("csv: {}\n", path.display()));
    out
}

fn qps_recall_experiment(scale: Scale, k: usize, id: &str) -> String {
    let mut out = banner(
        &format!("{id}: QPS vs recall@{k}"),
        "single-thread queries; QPS read off the L-ladder by interpolation",
    );
    let mut rows: Vec<(String, String, Vec<SweepPoint>)> = Vec::new();
    for recipe in scale.recipes() {
        let data = prepare(recipe, scale);
        let mut table =
            MarkdownTable::new(vec!["algo", "QPS@0.90", "QPS@0.95", "QPS@0.99", "best recall"]);
        for algo in Algo::ALL {
            let points = sweep_algo(&data, algo, k);
            let best = points.iter().map(|p| p.recall).fold(0.0, f64::max);
            let cells: Vec<String> = TARGETS
                .iter()
                .map(|&t| {
                    qps_at_recall(&points, t).map(|q| fmt_f(q, 0)).unwrap_or_else(|| "—".into())
                })
                .collect();
            table.push_row(vec![
                algo.name().to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
                fmt_f(best, 4),
            ]);
            rows.push((data.name.clone(), algo.name().to_string(), points));
        }
        out.push_str(&format!("\n### {}\n{}", data.name, table.render()));
    }
    curves_to_csv(&format!("{}_curves", id.to_lowercase()), &rows);
    out
}

/// E3 — QPS vs recall@1 across all contenders and datasets.
pub fn e3_qps_recall1(scale: Scale) -> String {
    qps_recall_experiment(scale, 1, "E3")
}

/// E4 — QPS vs recall@100.
pub fn e4_qps_recall100(scale: Scale) -> String {
    qps_recall_experiment(scale, 100, "E4")
}

/// E5 — distance computations (NDC) vs recall@10.
pub fn e5_ndc_recall(scale: Scale) -> String {
    let mut out = banner(
        "E5: NDC vs recall@10",
        "mean distance computations per query; lower at equal recall is better",
    );
    let mut rows: Vec<(String, String, Vec<SweepPoint>)> = Vec::new();
    for recipe in scale.recipes() {
        let data = prepare(recipe, scale);
        let mut table = MarkdownTable::new(vec!["algo", "NDC@0.90", "NDC@0.95", "NDC@0.99"]);
        for algo in Algo::ALL {
            let points = sweep_algo(&data, algo, 10);
            let cells: Vec<String> = TARGETS
                .iter()
                .map(|&t| {
                    ndc_at_recall(&points, t).map(|q| fmt_f(q, 0)).unwrap_or_else(|| "—".into())
                })
                .collect();
            table.push_row(vec![
                algo.name().to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
            rows.push((data.name.clone(), algo.name().to_string(), points));
        }
        out.push_str(&format!("\n### {}\n{}", data.name, table.render()));
    }
    curves_to_csv("e5_curves", &rows);
    out
}

/// E6 — effect of τ: build τ-MNG at multiples of τ₀ and measure quality,
/// speed, degree and index size.
pub fn e6_tau_sweep(scale: Scale) -> String {
    let mut out = banner(
        "E6: effect of tau",
        "tau in multiples of tau0 (mean base-point NN distance); sift-like dataset",
    );
    let data = prepare(Recipe::SiftLike, scale);
    let mut table = MarkdownTable::new(vec![
        "tau/tau0",
        "QPS@0.95",
        "recall@10 (L=100)",
        "avg deg",
        "index MB",
    ]);
    let mut csv =
        CsvTable::new(&["tau_mult", "tau", "qps_at_095", "recall_l100", "avg_degree", "index_mb"]);
    for mult in [0.0f32, 0.03, 0.06, 0.12, 0.25, 0.5, 1.0] {
        let tau = data.tau0 * mult;
        let index = build_tau_mng(
            data.base.clone(),
            data.metric,
            &data.knn,
            TauMngParams { tau, ..crate::params::tau_mng(tau) },
        )
        .expect("tau-MNG build");
        let points = run_sweep(&index, &data.queries, &data.gt, &SweepConfig::standard(10));
        let at_l100 = points.iter().find(|p| p.l == 100).map(|p| p.recall).unwrap_or(0.0);
        let qps = qps_at_recall(&points, 0.95);
        let stats = index.graph_stats();
        let mb = index.memory_bytes() as f64 / (1024.0 * 1024.0);
        table.push_row(vec![
            fmt_f(mult as f64, 2),
            qps.map(|q| fmt_f(q, 0)).unwrap_or_else(|| "—".into()),
            fmt_f(at_l100, 4),
            fmt_f(stats.avg_degree, 1),
            fmt_f(mb, 2),
        ]);
        csv.push_row(&[
            fmt_f(mult as f64, 2),
            fmt_f(tau as f64, 5),
            qps.map(|q| fmt_f(q, 1)).unwrap_or_else(|| "nan".into()),
            fmt_f(at_l100, 5),
            fmt_f(stats.avg_degree, 2),
            fmt_f(mb, 3),
        ]);
    }
    let path = write_report("e6_tau_sweep.csv", &csv.render()).expect("write csv");
    out.push_str(&table.render());
    out.push_str(&format!("csv: {}\n", path.display()));
    out
}

/// E7 — effect of the candidate-pool cap C ("h") and the degree cap R.
pub fn e7_hr_sweep(scale: Scale) -> String {
    let mut out = banner(
        "E7: effect of candidate size C and degree cap R",
        "tau fixed at tau0; sift-like dataset",
    );
    let data = prepare(Recipe::SiftLike, scale);
    let mut csv = CsvTable::new(&["param", "value", "qps_at_095", "recall_l100", "avg_degree"]);
    for (label, values) in [("R", vec![16usize, 24, 40, 64]), ("C", vec![100, 200, 400, 800])] {
        let mut table = MarkdownTable::new(vec![label, "QPS@0.95", "recall@10 (L=100)", "avg deg"]);
        for &v in &values {
            let mut p = crate::params::tau_mng(data.tau0 * crate::TAU_MULT);
            match label {
                "R" => p.r = v,
                _ => p.c = v,
            }
            let index =
                build_tau_mng(data.base.clone(), data.metric, &data.knn, p).expect("tau-MNG build");
            let points = run_sweep(&index, &data.queries, &data.gt, &SweepConfig::standard(10));
            let at_l100 = points.iter().find(|pt| pt.l == 100).map(|pt| pt.recall).unwrap_or(0.0);
            let qps = qps_at_recall(&points, 0.95);
            table.push_row(vec![
                v.to_string(),
                qps.map(|q| fmt_f(q, 0)).unwrap_or_else(|| "—".into()),
                fmt_f(at_l100, 4),
                fmt_f(index.graph_stats().avg_degree, 1),
            ]);
            csv.push_row(&[
                label.to_string(),
                v.to_string(),
                qps.map(|q| fmt_f(q, 1)).unwrap_or_else(|| "nan".into()),
                fmt_f(at_l100, 5),
                fmt_f(index.graph_stats().avg_degree, 2),
            ]);
        }
        out.push_str(&format!("\n### sweep over {label}\n{}", table.render()));
    }
    let path = write_report("e7_hr_sweep.csv", &csv.render()).expect("write csv");
    out.push_str(&format!("csv: {}\n", path.display()));
    out
}

/// E8 — scalability: build time and QPS@0.95 as n grows.
pub fn e8_scalability(scale: Scale) -> String {
    let mut out =
        banner("E8: scalability in n", "tau-MNG vs HNSW as the base set grows (sift-like)");
    let (n_max, nq) = scale.sizes();
    let ns: Vec<usize> = [n_max / 8, n_max / 4, n_max / 2, n_max]
        .into_iter()
        .filter(|&n| n >= 500)
        .collect();
    let mut table = MarkdownTable::new(vec!["n", "algo", "build s", "QPS@0.95", "NDC@0.95"]);
    let mut csv = CsvTable::new(&["n", "algo", "build_seconds", "qps_at_095", "ndc_at_095"]);
    for &n in &ns {
        let data = prepare_sized(Recipe::SiftLike, n, nq);
        for algo in [Algo::TauMng, Algo::Hnsw] {
            let built = build_algo(algo, &data);
            let (index, report) = (&built.index, built.report);
            let points =
                run_sweep(index.as_ref(), &data.queries, &data.gt, &SweepConfig::standard(10));
            let qps = qps_at_recall(&points, 0.95);
            let ndc = ndc_at_recall(&points, 0.95);
            table.push_row(vec![
                n.to_string(),
                algo.name().to_string(),
                fmt_f(report.seconds, 2),
                qps.map(|q| fmt_f(q, 0)).unwrap_or_else(|| "—".into()),
                ndc.map(|q| fmt_f(q, 0)).unwrap_or_else(|| "—".into()),
            ]);
            csv.push_row(&[
                n.to_string(),
                algo.name().to_string(),
                fmt_f(report.seconds, 3),
                qps.map(|q| fmt_f(q, 1)).unwrap_or_else(|| "nan".into()),
                ndc.map(|q| fmt_f(q, 1)).unwrap_or_else(|| "nan".into()),
            ]);
        }
    }
    let path = write_report("e8_scalability.csv", &csv.render()).expect("write csv");
    out.push_str(&table.render());
    out.push_str(&format!("csv: {}\n", path.display()));
    out
}

/// E9 — search-algorithm ablation: plain beam vs two-phase vs QEO.
pub fn e9_search_ablation(scale: Scale) -> String {
    let mut out = banner(
        "E9: search ablation",
        "same tau-MNG index, four search configurations (sift-like, k=10)",
    );
    let data = prepare(Recipe::SiftLike, scale);
    let index = build_tau_mng(
        data.base.clone(),
        data.metric,
        &data.knn,
        crate::params::tau_mng(data.tau0 * crate::TAU_MULT),
    )
    .expect("tau-MNG build");
    let configs: [(&str, TauSearchOptions); 4] = [
        ("plain beam", TauSearchOptions::plain()),
        ("two-phase", TauSearchOptions { two_phase: true, qeo: false }),
        ("QEO", TauSearchOptions { two_phase: false, qeo: true }),
        ("two-phase+QEO", TauSearchOptions { two_phase: true, qeo: true }),
    ];
    let k = 10;
    let ls = [20usize, 50, 100, 200];
    let mut table = MarkdownTable::new(vec!["config", "L", "recall@10", "QPS", "NDC", "skipped"]);
    let mut csv = CsvTable::new(&["config", "L", "recall", "qps", "ndc", "skipped"]);
    let mut scratch = Scratch::new(index.num_points());
    for (name, opts) in configs {
        for &l in &ls {
            let nq = data.queries.len();
            // Warm-up + accuracy pass.
            let mut ids = vec![Vec::new(); nq];
            let mut stats = ann_graph::SearchStats::default();
            for q in 0..nq as u32 {
                let r = index.search_opts(data.queries.get(q), k, l, opts, &mut scratch);
                stats.accumulate(r.stats);
                ids[q as usize] = r.ids;
            }
            // Timed pass.
            let t0 = std::time::Instant::now();
            for q in 0..nq as u32 {
                let _ = index.search_opts(data.queries.get(q), k, l, opts, &mut scratch);
            }
            let qps = nq as f64 / t0.elapsed().as_secs_f64();
            let recall = ann_vectors::accuracy::mean_recall_at_k(&data.gt, &ids, k);
            table.push_row(vec![
                name.to_string(),
                l.to_string(),
                fmt_f(recall, 4),
                fmt_f(qps, 0),
                fmt_f(stats.ndc as f64 / nq as f64, 0),
                fmt_f(stats.skipped as f64 / nq as f64, 0),
            ]);
            csv.push_row(&[
                name.to_string(),
                l.to_string(),
                fmt_f(recall, 5),
                fmt_f(qps, 1),
                fmt_f(stats.ndc as f64 / nq as f64, 1),
                fmt_f(stats.skipped as f64 / nq as f64, 1),
            ]);
        }
    }
    let path = write_report("e9_search_ablation.csv", &csv.render()).expect("write csv");
    out.push_str(&table.render());
    out.push_str(&format!("csv: {}\n", path.display()));
    out
}

/// E10 — the exactness theorem, empirically: recall@1 of greedy descent on
/// the exact τ-MG for τ-tube queries must be 1.0; the MRNG control (τ = 0)
/// must not be.
pub fn e10_exactness(scale: Scale) -> String {
    let mut out = banner(
        "E10: exactness guarantee",
        "exact tau-MG, queries generated with d(q,P) <= tau by construction",
    );
    let n = match scale {
        Scale::Fast => 1_000,
        Scale::Default => 3_000,
        Scale::Full => 6_000,
    };
    let base = Arc::new(ann_vectors::synthetic::uniform(16, n, REPRO_SEED));
    let tau0 = ann_vectors::synthetic::mean_nn_distance(&base, 200, REPRO_SEED);
    // Probe every graph with the SAME query tube. Graphs built with
    // tau_graph >= tau_probe carry the guarantee; graphs below it do not.
    let probe_mult = 0.3f32;
    let probe_tau = tau0 * probe_mult;
    let queries = tau_tube_queries(&base, 300, probe_tau, REPRO_SEED ^ 0x99);
    let gt = brute_force_ground_truth(Metric::L2, &base, &queries, 1).expect("gt");
    let mut table = MarkdownTable::new(vec![
        "graph",
        "tau/tau0",
        "guaranteed?",
        "recall@1 greedy(L=1)",
        "recall@1 beam(L=8)",
        "avg deg",
    ]);
    let mut csv = CsvTable::new(&[
        "graph",
        "tau_mult",
        "guaranteed",
        "recall_greedy",
        "recall_beam8",
        "avg_degree",
    ]);
    for mult in [0.0f32, 0.1, probe_mult] {
        let tau = tau0 * mult;
        let idx = build_tau_mg(base.clone(), Metric::L2, TauMgParams { tau, degree_cap: None })
            .expect("exact tau-MG");
        let mut greedy_hits = 0usize;
        let mut beam_hits = 0usize;
        let mut scratch = Scratch::new(idx.num_points());
        for q in 0..queries.len() as u32 {
            let (node, _, _) = tau_mg::tau_greedy_nn(&idx, queries.get(q));
            if node == gt.nn(q as usize).0 {
                greedy_hits += 1;
            }
            let r = idx.search_opts(queries.get(q), 1, 8, TauSearchOptions::plain(), &mut scratch);
            if r.ids.first() == Some(&gt.nn(q as usize).0) {
                beam_hits += 1;
            }
        }
        let name = if mult == 0.0 { "MRNG (control)" } else { "tau-MG" };
        let guaranteed = mult >= probe_mult;
        let stats = idx.graph_stats();
        table.push_row(vec![
            name.to_string(),
            fmt_f(mult as f64, 2),
            (if guaranteed { "yes" } else { "no" }).to_string(),
            fmt_f(greedy_hits as f64 / queries.len() as f64, 4),
            fmt_f(beam_hits as f64 / queries.len() as f64, 4),
            fmt_f(stats.avg_degree, 1),
        ]);
        csv.push_row(&[
            name.to_string(),
            fmt_f(mult as f64, 2),
            guaranteed.to_string(),
            fmt_f(greedy_hits as f64 / queries.len() as f64, 5),
            fmt_f(beam_hits as f64 / queries.len() as f64, 5),
            fmt_f(stats.avg_degree, 2),
        ]);
    }
    let path = write_report("e10_exactness.csv", &csv.render()).expect("write csv");
    out.push_str(&table.render());
    out.push_str(&format!(
        "query tube: d(q,P) <= {probe_mult:.2}*tau0; rows with tau/tau0 >= {probe_mult:.2} carry the theorem and must read 1.0000 under greedy(L=1).\n"
    ));
    out.push_str(&format!("csv: {}\n", path.display()));
    out
}

/// E12 — index maintenance (extension experiment): incremental insertion
/// and deletion against full rebuilds.
///
/// The published construction is static; this measures the dynamic layer
/// built in `tau_mg::dynamic` (DESIGN.md marks it as an extension):
/// (a) build on 80% of the data then insert the rest incrementally vs
/// rebuild on 100%; (b) delete 20% with tombstones, then with splice repair,
/// measuring live-set recall each way.
pub fn e12_maintenance(scale: Scale) -> String {
    use tau_mg::DynamicTauMng;
    let mut out = banner(
        "E12: dynamic maintenance (extension)",
        "incremental insert / tombstone delete / splice repair vs full rebuilds (sift-like)",
    );
    let (n, nq) = scale.sizes();
    let n = n / 2; // maintenance experiments build several indexes
    let data = prepare_sized(Recipe::SiftLike, n, nq);
    let tau = data.tau0 * crate::TAU_MULT;
    let k = 10;
    let mut table = MarkdownTable::new(vec!["variant", "wall s", "recall@10 (L=100)"]);
    let mut csv = CsvTable::new(&["variant", "seconds", "recall_l100"]);

    let recall_of = |dynamic: &mut DynamicTauMng| -> f64 {
        let mut ids = Vec::with_capacity(data.queries.len());
        for q in 0..data.queries.len() as u32 {
            ids.push(dynamic.search(data.queries.get(q), k, 100).ids);
        }
        ann_vectors::accuracy::mean_recall_at_k(&data.gt, &ids, k)
    };

    // (a) Insertion: rebuild vs incremental.
    let n80 = n * 4 / 5;
    let sub_rows: Vec<Vec<f32>> = (0..n80 as u32).map(|i| data.base.get(i).to_vec()).collect();
    let sub_store = Arc::new(ann_vectors::VecStore::from_rows(&sub_rows).expect("subset"));
    let sub_knn = ann_knng::nn_descent(
        data.metric,
        &sub_store,
        ann_knng::NnDescentParams { k: crate::KNN_K, seed: REPRO_SEED, ..Default::default() },
    )
    .expect("subset knn");
    let t0 = std::time::Instant::now();
    let sub_index = build_tau_mng(sub_store, data.metric, &sub_knn, crate::params::tau_mng(tau))
        .expect("subset build");
    let mut incremental = DynamicTauMng::from_index(&sub_index);
    for i in n80 as u32..n as u32 {
        incremental.insert(data.base.get(i)).expect("insert");
    }
    let incr_s = t0.elapsed().as_secs_f64();
    let incr_recall = recall_of(&mut incremental);

    let t0 = std::time::Instant::now();
    let full =
        build_tau_mng(data.base.clone(), data.metric, &data.knn, crate::params::tau_mng(tau))
            .expect("full build");
    let full_s = t0.elapsed().as_secs_f64() + data.knn_seconds;
    let mut full_dyn = DynamicTauMng::from_index(&full);
    let full_recall = recall_of(&mut full_dyn);

    for (name, secs, recall) in [
        ("full rebuild (100%)", full_s, full_recall),
        ("build 80% + insert 20%", incr_s, incr_recall),
    ] {
        table.push_row(vec![name.to_string(), fmt_f(secs, 2), fmt_f(recall, 4)]);
        csv.push_row(&[name.to_string(), fmt_f(secs, 3), fmt_f(recall, 5)]);
    }

    // (b) Deletion: tombstones vs splice repair, scored on the live set.
    let n_del = n / 5;
    let live_gt = {
        let live_rows: Vec<Vec<f32>> =
            (n_del as u32..n as u32).map(|i| data.base.get(i).to_vec()).collect();
        let live = Arc::new(ann_vectors::VecStore::from_rows(&live_rows).expect("live"));
        brute_force_ground_truth(data.metric, &live, &data.queries, k).expect("live gt")
    };
    let live_recall = |dynamic: &mut DynamicTauMng| -> f64 {
        let mut hits = 0usize;
        for q in 0..data.queries.len() as u32 {
            let r = dynamic.search(data.queries.get(q), k, 100);
            let mapped: Vec<u32> = r.ids.iter().map(|&id| id - n_del as u32).collect();
            hits += live_gt.ids(q as usize).iter().filter(|id| mapped.contains(id)).count();
        }
        hits as f64 / (data.queries.len() * k) as f64
    };

    let mut lazy = DynamicTauMng::from_index(&full);
    let t0 = std::time::Instant::now();
    for id in 0..n_del as u32 {
        lazy.delete(id).expect("delete");
    }
    let lazy_s = t0.elapsed().as_secs_f64();
    let lazy_recall = live_recall(&mut lazy);

    let t0 = std::time::Instant::now();
    lazy.repair();
    let repair_s = lazy_s + t0.elapsed().as_secs_f64();
    let repair_recall = live_recall(&mut lazy);

    for (name, secs, recall) in [
        ("delete 20%: tombstones only", lazy_s, lazy_recall),
        ("delete 20%: + splice repair", repair_s, repair_recall),
    ] {
        table.push_row(vec![name.to_string(), fmt_f(secs, 2), fmt_f(recall, 4)]);
        csv.push_row(&[name.to_string(), fmt_f(secs, 3), fmt_f(recall, 5)]);
    }
    let path = write_report("e12_maintenance.csv", &csv.render()).expect("write csv");
    out.push_str(&table.render());
    out.push_str(&format!("csv: {}\n", path.display()));
    out
}

/// Adapter translating a relayouted index's permutation-private internal
/// ids back to dataset ids through `order[new] = old` — the same mapping
/// the serving layer's external-id table applies — so relayouted arms score
/// against the original ground truth. The translation happens outside the
/// traversal, so QPS/NDC/hops still measure the relayouted layout.
struct Relabeled<'a> {
    inner: &'a dyn AnnIndex,
    order: &'a [u32],
}

impl AnnIndex for Relabeled<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn num_points(&self) -> usize {
        self.inner.num_points()
    }
    fn search_with(&self, query: &[f32], k: usize, l: usize, scratch: &mut Scratch) -> QueryResult {
        let mut r = self.inner.search_with(query, k, l, scratch);
        for id in &mut r.ids {
            *id = self.order[*id as usize];
        }
        r
    }
    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
    fn graph_stats(&self) -> GraphStats {
        self.inner.graph_stats()
    }
}

/// E11 — traversal hop counts per algorithm at matched L, plus a
/// kernel/layout ablation on τ-MNG: BFS relayout leaves hops/NDC untouched
/// by construction (the traversal is isomorphic) but lifts QPS through cache
/// locality, and the SQ8 fast path trades a few exact re-rank NDC for
/// cheaper per-candidate arithmetic.
pub fn e11_hops(scale: Scale) -> String {
    let mut out = banner(
        "E11: traversal hops",
        "mean expansions per query at L = 100, k = 10; QPS single-thread",
    );
    let mut csv = CsvTable::new(&["dataset", "algo", "hops", "ndc", "qps", "recall"]);
    let sweep = SweepConfig { k: 10, ls: vec![100], repeats: 1 };
    for recipe in scale.recipes() {
        let data = prepare(recipe, scale);
        let mut table = MarkdownTable::new(vec!["algo", "hops", "NDC", "QPS", "recall@10"]);
        let mut rows: Vec<(String, SweepPoint)> = Vec::new();
        for algo in Algo::ALL {
            let built = build_algo(algo, &data);
            let points = run_sweep(built.index.as_ref(), &data.queries, &data.gt, &sweep);
            rows.push((algo.name().to_string(), points[0]));
        }
        // Ablation arms: same τ-MNG parameters, relayouted data layout, then
        // the SQ8 fast path on top of the relayouted index.
        let tmng = build_tau_mng(
            data.base.clone(),
            data.metric,
            &data.knn,
            crate::params::tau_mng(data.tau0 * crate::TAU_MULT),
        )
        .expect("tau-MNG build for layout ablation");
        let (mut relay, order) = tmng.relayout_bfs();
        let points =
            run_sweep(&Relabeled { inner: &relay, order: &order }, &data.queries, &data.gt, &sweep);
        rows.push(("tau-MNG+relayout".to_string(), points[0]));
        relay.enable_sq8();
        let points =
            run_sweep(&Relabeled { inner: &relay, order: &order }, &data.queries, &data.gt, &sweep);
        rows.push(("tau-MNG+relayout+sq8".to_string(), points[0]));
        for (name, p) in rows {
            table.push_row(vec![
                name.clone(),
                fmt_f(p.hops, 1),
                fmt_f(p.ndc, 0),
                fmt_f(p.qps, 0),
                fmt_f(p.recall, 4),
            ]);
            csv.push_row(&[
                data.name.clone(),
                name,
                fmt_f(p.hops, 2),
                fmt_f(p.ndc, 1),
                fmt_f(p.qps, 1),
                fmt_f(p.recall, 5),
            ]);
        }
        out.push_str(&format!("\n### {}\n{}", data.name, table.render()));
    }
    let path = write_report("e11_hops.csv", &csv.render()).expect("write csv");
    out.push_str(&format!("csv: {}\n", path.display()));
    out
}

/// E13 — concurrent serving throughput (extension): the `ann-service`
/// worker pool under increasing client pressure.
///
/// Three operating points over the same tau-MNG snapshot, same queries,
/// same requested beam width (L = 100, k = 10):
///
/// * **unloaded** — as many clients as workers, ample queue: no shedding,
///   full recall (the quality ceiling);
/// * **oversubscribed** — 4x more clients than workers into a short queue:
///   occupancy-based shedding engages, beam widths shrink toward the floor,
///   recall degrades while every request is still answered;
/// * **deadline 1 ms** — oversubscribed with a per-batch deadline: the
///   deadline policy pushes degradation further and counts misses.
///
/// The point being demonstrated: under saturation the service sheds
/// *recall*, not availability — `answered` stays equal to `submitted`
/// while `shed` grows and recall drops.
pub fn e13_serving(scale: Scale) -> String {
    use ann_service::{AnnService, QueryOptions, ServiceConfig};
    let mut out = banner(
        "E13: concurrent serving (extension)",
        "ann-service worker pool: QPS / latency / load shedding (glove-like, k = 10)",
    );
    let (n, nq) = scale.sizes();
    let n = n / 2; // serving experiment rebuilds nothing; index once, at half grid scale
                   // Glove-like: the hub-heavy cosine recipe, hardest in the grid at small
                   // beam widths — degradation to the floor visibly costs recall.
    let data = prepare_sized(Recipe::GloveLike, n, nq);
    let tau = data.tau0 * crate::TAU_MULT;
    let index_of = || {
        build_tau_mng(data.base.clone(), data.metric, &data.knn, crate::params::tau_mng(tau))
            .expect("tau-MNG build for serving")
    };
    let k = 10;
    let requested_l = 100usize;
    let batch = 8usize;
    let batches_per_client = match scale {
        Scale::Fast => 24,
        Scale::Default => 64,
        Scale::Full => 128,
    };

    struct PhaseOutcome {
        qps: f64,
        p50_us: u64,
        p99_us: u64,
        shed_degraded: u64,
        shed_overflow: u64,
        deadline_missed: u64,
        mean_eff_l: f64,
        recall: f64,
        answered: u64,
        submitted: u64,
    }

    let run_phase = |clients: usize,
                     config: ServiceConfig,
                     deadline: Option<std::time::Duration>|
     -> PhaseOutcome {
        let data = &data;
        let (svc, _writer) = AnnService::launch(index_of(), TauMngParams::default(), config);
        let service = &svc;
        let hits = std::sync::atomic::AtomicU64::new(0);
        let eff_l_sum = std::sync::atomic::AtomicU64::new(0);
        let answered = std::sync::atomic::AtomicU64::new(0);
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let hits = &hits;
                let eff_l_sum = &eff_l_sum;
                let answered = &answered;
                s.spawn(move || {
                    for b in 0..batches_per_client {
                        // Each batch cycles through the query set, staggered
                        // per client so clients are not in lockstep.
                        let start = (c * batches_per_client + b) * batch;
                        let qids: Vec<u32> =
                            (0..batch).map(|i| ((start + i) % nq) as u32).collect();
                        let queries: Vec<Vec<f32>> =
                            qids.iter().map(|&q| data.queries.get(q).to_vec()).collect();
                        let opts = QueryOptions { deadline, ..Default::default() };
                        let Some(result) = service.submit_with(queries, k, opts).wait() else {
                            continue;
                        };
                        for (reply, &q) in result.replies.iter().zip(&qids) {
                            // Generation 0 snapshot: external ids == base ids.
                            let ids: Vec<u32> = reply.ids.iter().map(|&e| e as u32).collect();
                            let gt_ids = &data.gt.ids(q as usize)[..k];
                            let h = ids.iter().filter(|id| gt_ids.contains(id)).count();
                            hits.fetch_add(h as u64, std::sync::atomic::Ordering::Relaxed);
                            eff_l_sum.fetch_add(
                                reply.effective_l as u64,
                                std::sync::atomic::Ordering::Relaxed,
                            );
                            answered.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        let m = service.metrics();
        let answered = answered.into_inner();
        let outcome = PhaseOutcome {
            qps: answered as f64 / wall,
            p50_us: m.latency_us.quantile(0.50),
            p99_us: m.latency_us.quantile(0.99),
            shed_degraded: m.shed_degraded.get(),
            shed_overflow: m.shed_overflow.get(),
            deadline_missed: m.deadline_missed.get(),
            mean_eff_l: eff_l_sum.into_inner() as f64 / answered.max(1) as f64,
            recall: hits.into_inner() as f64 / (answered.max(1) * k as u64) as f64,
            answered,
            submitted: m.queries.get(),
        };
        svc.shutdown();
        outcome
    };

    let workers = ann_vectors::parallel::num_threads().clamp(2, 8);
    let relaxed = ServiceConfig {
        workers,
        queue_capacity: 4 * workers * batches_per_client, // never fills
        default_l: requested_l,
        min_l: 16,
        ..Default::default()
    };
    let squeezed = ServiceConfig {
        workers: 2,
        queue_capacity: 4,
        default_l: requested_l,
        min_l: k, // degrade all the way to the k floor under saturation
        pressure_lo: 0.0,
        pressure_hi: 0.75,
    };

    let phases: [(&str, usize, ServiceConfig, Option<std::time::Duration>); 3] = [
        ("unloaded", workers, relaxed, None),
        ("oversubscribed 4x", 8, squeezed, None),
        (
            "oversubscribed + 1ms deadline",
            8,
            squeezed,
            Some(std::time::Duration::from_millis(1)),
        ),
    ];

    let mut table = MarkdownTable::new(vec![
        "phase",
        "clients",
        "QPS",
        "p50 us",
        "p99 us",
        "shed",
        "overflow",
        "missed",
        "mean eff L",
        "recall@10",
        "answered",
    ]);
    let mut csv = CsvTable::new(&[
        "phase",
        "clients",
        "workers",
        "qps",
        "p50_us",
        "p99_us",
        "shed_degraded",
        "shed_overflow",
        "deadline_missed",
        "mean_effective_l",
        "recall",
        "answered",
        "submitted",
    ]);
    let mut baseline_recall = None;
    for (name, clients, config, deadline) in phases {
        let o = run_phase(clients, config, deadline);
        assert_eq!(
            o.answered, o.submitted,
            "{name}: shedding must degrade recall, never drop requests"
        );
        if baseline_recall.is_none() {
            baseline_recall = Some(o.recall);
        }
        table.push_row(vec![
            name.to_string(),
            clients.to_string(),
            fmt_f(o.qps, 0),
            o.p50_us.to_string(),
            o.p99_us.to_string(),
            o.shed_degraded.to_string(),
            o.shed_overflow.to_string(),
            o.deadline_missed.to_string(),
            fmt_f(o.mean_eff_l, 1),
            fmt_f(o.recall, 4),
            o.answered.to_string(),
        ]);
        csv.push_row(&[
            name.to_string(),
            clients.to_string(),
            config.workers.to_string(),
            fmt_f(o.qps, 1),
            o.p50_us.to_string(),
            o.p99_us.to_string(),
            o.shed_degraded.to_string(),
            o.shed_overflow.to_string(),
            o.deadline_missed.to_string(),
            fmt_f(o.mean_eff_l, 2),
            fmt_f(o.recall, 5),
            o.answered.to_string(),
            o.submitted.to_string(),
        ]);
    }
    let path = write_report("e13_serving.csv", &csv.render()).expect("write csv");
    out.push_str(&table.render());
    out.push_str(&format!("csv: {}\n", path.display()));
    out.push_str(
        "note: under saturation the beam narrows (mean eff L < requested 100) and\n\
         recall drops below the unloaded baseline, but answered == submitted in\n\
         every phase: the service sheds recall, not availability.\n",
    );
    out
}

/// E14 — filtered search (extension): filter-during-search vs the
/// post-filter baseline, per selectivity band.
///
/// One τ-MNG index, one query set, three selectivity bands (1%, 10%, 50%
/// of the corpus matching a deterministic stride predicate). Both
/// strategies sweep the same L ladder and are measured against the
/// *filtered* exhaustive ground truth; the headline comparison is
/// recall@10 at an equal NDC budget (the post-filter baseline's cost at
/// its largest beam).
///
/// The point being demonstrated: at low selectivity (≤ 10%) the
/// post-filter baseline wastes most of its beam on points the answer can
/// never contain, while the selectivity-widened result pool keeps paying
/// only for what it can return — higher recall at the same distance
/// budget.
pub fn e14_filtered(scale: Scale) -> String {
    use ann_eval::{
        band_matches, filtered_ground_truth, recall_at_ndc, run_filtered_sweep,
        run_postfilter_sweep,
    };
    let mut out = banner(
        "E14: filtered search (extension)",
        "filter-during-search vs post-filter, per selectivity band (sift-like, k = 10)",
    );
    let (n, nq) = scale.sizes();
    let n = n / 2; // one index serves every band; halve the grid scale
    let data = prepare_sized(Recipe::SiftLike, n, nq);
    let tau = data.tau0 * crate::TAU_MULT;
    let index =
        build_tau_mng(data.base.clone(), data.metric, &data.knn, crate::params::tau_mng(tau))
            .expect("tau-MNG build for filtered search");
    let k = 10;
    let ls: Vec<usize> = vec![10, 20, 40, 60, 100, 150, 200];

    let mut table = MarkdownTable::new(vec![
        "band",
        "strategy",
        "recall@10 (L=100)",
        "NDC (L=100)",
        "recall @ equal NDC",
    ]);
    let mut csv = CsvTable::new(&["band", "strategy", "L", "recall", "ndc", "qps"]);
    for fraction in [0.01f64, 0.10, 0.50] {
        let matches = band_matches(data.base.len(), fraction);
        let gt = filtered_ground_truth(data.metric, &data.base, &data.queries, &matches, k);
        let during = run_filtered_sweep(&index, &data.queries, &matches, &gt, k, &ls);
        let post = run_postfilter_sweep(&index, &data.queries, &matches, &gt, k, &ls);
        let at_l100 = |pts: &[ann_eval::FilteredPoint]| {
            pts.iter().find(|p| p.l == 100).copied().unwrap_or(pts[pts.len() - 1])
        };
        // Equal-cost comparison: the budget is the baseline's cost at the
        // canonical L=100 operating point. (Its largest-beam cost sits in
        // the saturated regime where both curves converge to ~1.0 and the
        // read-out measures interpolation noise, not strategy.)
        let budget = at_l100(&post).ndc;
        let band = format!("{:.0}%", fraction * 100.0);
        for (name, pts) in [("filter-during-search", &during), ("post-filter", &post)] {
            let p100 = at_l100(pts);
            table.push_row(vec![
                band.clone(),
                name.to_string(),
                fmt_f(p100.recall, 4),
                fmt_f(p100.ndc, 0),
                fmt_f(recall_at_ndc(pts, budget).unwrap_or(0.0), 4),
            ]);
            for p in pts {
                csv.push_row(&[
                    band.clone(),
                    name.to_string(),
                    p.l.to_string(),
                    fmt_f(p.recall, 5),
                    fmt_f(p.ndc, 1),
                    fmt_f(p.qps, 1),
                ]);
            }
        }
    }
    let path = write_report("e14_filtered.csv", &csv.render()).expect("write csv");
    out.push_str(&table.render());
    out.push_str(&format!("csv: {}\n", path.display()));
    out.push_str(
        "note: 'recall @ equal NDC' reads both curves at the post-filter\n\
         baseline's L=100 cost; in the 1% and 10% bands the during-search\n\
         filter should dominate there.\n",
    );
    out
}
