//! Repro binary: run the graph-invariant auditor over every contender's
//! freshly built index at the configured scale (`ANN_SCALE=fast|default|full`).
//!
//! This is the offline counterpart of the debug-build publish gate in
//! `ann-service`: full sampled geometry (edge lengths, τ-MG occlusion rule,
//! greedy-descent floor) on top of the structural checks, over every builder
//! in the comparison grid plus the shared kNN graph. Exit status is non-zero
//! if any index fails its invariants, so the repro pipeline can gate on it.

use ann_bench::{params, prepare, Scale, KNN_K, TAU_MULT};
use ann_eval::audit::{
    audit_bare_graph, audit_entry_graph, audit_frozen, audit_tau, AuditOptions, AuditReport,
};
use ann_hcnng::build_hcnng;
use ann_hnsw::Hnsw;
use ann_nsg::{build_nsg, build_ssg};
use ann_vamana::build_vamana;
use std::process::ExitCode;
use tau_mg::build_tau_mng;

fn main() -> ExitCode {
    let scale = Scale::from_env();
    let mut dirty = 0usize;
    for recipe in scale.recipes() {
        let data = prepare(recipe, scale);
        println!("== {} (n = {}) ==", data.name, data.base.len());
        let mut reports: Vec<AuditReport> = Vec::new();

        // The shared kNN graph: directed, no entry point, degree exactly k.
        reports.push(audit_bare_graph(
            "kNN",
            &data.knn.to_var_graph(),
            Some(KNN_K.min(data.base.len() - 1)),
        ));

        // Builders whose graphs guarantee greedy navigability: full checks.
        let navigable = AuditOptions::default();
        // Builders without that guarantee (HCNNG's union-of-MSTs, HNSW's
        // bottom layer stripped of its routing layers): structural +
        // reachability only.
        let structural = AuditOptions { monotonicity_floor: None, ..AuditOptions::default() };

        let hnsw = Hnsw::build(data.base.clone(), data.metric, params::hnsw()).expect("HNSW");
        reports.push(audit_entry_graph(
            "HNSW layer0",
            hnsw.bottom_layer(),
            &data.base,
            hnsw.entry_point().0,
            Some(hnsw.params().max_m0()),
            &structural,
        ));

        let nsg = build_nsg(data.base.clone(), data.metric, &data.knn, params::nsg()).expect("NSG");
        reports.push(audit_frozen("NSG", &nsg, Some(params::nsg().r), &navigable));

        let ssg = build_ssg(data.base.clone(), data.metric, &data.knn, params::ssg()).expect("SSG");
        reports.push(audit_frozen("SSG", &ssg, Some(params::ssg().r), &navigable));

        let vamana =
            build_vamana(data.base.clone(), data.metric, params::vamana()).expect("Vamana");
        reports.push(audit_frozen("Vamana", &vamana, Some(params::vamana().r), &navigable));

        let hcnng = build_hcnng(data.base.clone(), data.metric, params::hcnng()).expect("HCNNG");
        reports.push(audit_frozen("HCNNG", &hcnng, None, &structural));

        let tau = params::tau_mng(data.tau0 * TAU_MULT);
        let tmng = build_tau_mng(data.base.clone(), data.metric, &data.knn, tau).expect("tau-MNG");
        reports.push(audit_tau(
            "tau-MNG",
            &tmng,
            &AuditOptions { degree_cap: Some(tau.r), ..AuditOptions::default() },
        ));

        for r in &reports {
            println!("{r}");
            dirty += r.violations.len();
        }
    }
    if dirty == 0 {
        println!("repro_audit: all indexes clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("repro_audit: {dirty} violation(s)");
        ExitCode::FAILURE
    }
}
