//! Repro binary for experiment E1_DATASETS — see DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e1_datasets(scale));
}
