//! Repro binary for experiment E7_HR_SWEEP — see DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e7_hr_sweep(scale));
}
