//! Run the entire experiment grid (E1–E14) in sequence.
//!
//! Scale via `ANN_SCALE=fast|default|full`. Reports print to stdout; curve
//! data lands under `results/` (or `ANN_RESULTS_DIR`).
fn main() {
    use ann_bench::experiments as ex;
    let scale = ann_bench::Scale::from_env();
    let t0 = std::time::Instant::now();
    for (name, f) in [
        ("E1", ex::e1_datasets as fn(ann_bench::Scale) -> String),
        ("E2", ex::e2_construction),
        ("E3", ex::e3_qps_recall1),
        ("E4", ex::e4_qps_recall100),
        ("E5", ex::e5_ndc_recall),
        ("E6", ex::e6_tau_sweep),
        ("E7", ex::e7_hr_sweep),
        ("E8", ex::e8_scalability),
        ("E9", ex::e9_search_ablation),
        ("E10", ex::e10_exactness),
        ("E11", ex::e11_hops),
        ("E12", ex::e12_maintenance),
        ("E13", ex::e13_serving),
        ("E14", ex::e14_filtered),
    ] {
        let t = std::time::Instant::now();
        println!("{}", f(scale));
        eprintln!("[{name} done in {:.1}s]", t.elapsed().as_secs_f64());
    }
    eprintln!("[grid complete in {:.1}s]", t0.elapsed().as_secs_f64());
}
