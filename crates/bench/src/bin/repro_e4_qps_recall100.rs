//! Repro binary for experiment E4_QPS_RECALL100 — see DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e4_qps_recall100(scale));
}
