//! Repro binary for experiment E8_SCALABILITY — see DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e8_scalability(scale));
}
