//! Repro binary for experiment E2_CONSTRUCTION — see DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e2_construction(scale));
}
