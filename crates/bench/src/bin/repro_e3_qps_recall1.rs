//! Repro binary for experiment E3_QPS_RECALL1 — see DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e3_qps_recall1(scale));
}
