//! Repro binary for experiment E13 (concurrent serving extension) — see
//! DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e13_serving(scale));
}
