//! Kernel smoke gate: times the scalar and SIMD distance paths head-to-head
//! and fails (exit 1) if the SIMD path is below its floor at dim 128.
//!
//! Run with `cargo run --release -p ann-bench --bin kernel_smoke`. The
//! `ANN_KERNEL_SMOKE_MIN` floor (default 1.0 — "SIMD must not be slower")
//! applies to `l2_sq`, the workhorse kernel of the experiment grid; `dot`
//! is held to the fixed never-slower floor, since a pure multiply-add sweep
//! is load-bound and its vector headroom is smaller. The CI `kernels` job
//! runs the default; locally, `ANN_KERNEL_SMOKE_MIN=2.0` with
//! `RUSTFLAGS="-C target-cpu=native"` asserts the full l2_sq speedup
//! target on quiet hardware.

use ann_vectors::kernel::{scalar, simd};
use std::hint::black_box;
use std::time::Instant;

const ROWS: usize = 1024;
const PASSES: usize = 400;

fn corpus(dim: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..ROWS * dim)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f32 / 1000.0 - 1.0
        })
        .collect()
}

/// Seconds for `PASSES` sweeps of `query` against every row, under `f`.
fn time_kernel(dim: usize, data: &[f32], query: &[f32], f: impl Fn(&[f32], &[f32]) -> f32) -> f64 {
    // Warm-up pass so both arms see hot caches.
    let mut acc = 0.0f32;
    for row in data.chunks_exact(dim) {
        acc += f(black_box(query), black_box(row));
    }
    let t0 = Instant::now();
    for _ in 0..PASSES {
        for row in data.chunks_exact(dim) {
            acc += f(black_box(query), black_box(row));
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    black_box(acc);
    secs
}

fn main() {
    let floor: f64 = std::env::var("ANN_KERNEL_SMOKE_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);

    println!("kernel smoke: {ROWS} rows x {PASSES} passes per arm; floor at dim 128: {floor}x");
    println!("| dim | kernel | scalar (s) | simd (s) | speedup |");
    println!("|----:|:-------|-----------:|---------:|--------:|");

    let mut gate_ok = true;
    for dim in [64usize, 128, 256] {
        let data = corpus(dim, dim as u64);
        let query: Vec<f32> = corpus(dim, 777).into_iter().take(dim).collect();
        for (name, s, v) in [
            (
                "l2_sq",
                time_kernel(dim, &data, &query, scalar::l2_sq),
                time_kernel(dim, &data, &query, simd::l2_sq),
            ),
            (
                "dot",
                time_kernel(dim, &data, &query, scalar::dot),
                time_kernel(dim, &data, &query, simd::dot),
            ),
        ] {
            let speedup = s / v;
            println!("| {dim} | {name} | {s:.4} | {v:.4} | {speedup:.2}x |");
            let kernel_floor = if name == "l2_sq" { floor } else { floor.min(1.0) };
            if dim == 128 && speedup < kernel_floor {
                gate_ok = false;
            }
        }
    }

    if !gate_ok {
        eprintln!("FAIL: SIMD path below the {floor}x floor at dim 128");
        std::process::exit(1);
    }
    println!("ok: SIMD path clears the {floor}x floor at dim 128");
}
