//! Repro binary for experiment E5_NDC_RECALL — see DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e5_ndc_recall(scale));
}
