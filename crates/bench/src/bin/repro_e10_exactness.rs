//! Repro binary for experiment E10_EXACTNESS — see DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e10_exactness(scale));
}
