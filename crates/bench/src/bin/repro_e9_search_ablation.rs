//! Repro binary for experiment E9_SEARCH_ABLATION — see DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e9_search_ablation(scale));
}
