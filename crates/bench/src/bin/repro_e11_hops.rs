//! Repro binary for experiment E11_HOPS — see DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e11_hops(scale));
}
