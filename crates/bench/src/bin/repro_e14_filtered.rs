//! Repro binary for experiment E14 (filtered search extension) — see
//! DESIGN.md §7i.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e14_filtered(scale));
}
