//! Repro binary for experiment E6_TAU_SWEEP — see DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e6_tau_sweep(scale));
}
