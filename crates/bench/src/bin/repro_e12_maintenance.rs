//! Repro binary for experiment E12 (dynamic-maintenance extension) — see
//! DESIGN.md §6.
fn main() {
    let scale = ann_bench::Scale::from_env();
    println!("{}", ann_bench::experiments::e12_maintenance(scale));
}
