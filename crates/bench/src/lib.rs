//! # ann-bench
//!
//! Reproduction harness: one binary per paper table/figure (`src/bin/
//! repro_e*.rs`, see DESIGN.md §6 for the experiment grid) plus Criterion
//! micro-benchmarks (`benches/`). This library holds the shared pieces —
//! dataset preparation at a configurable scale and the contender builders —
//! so every binary measures the same objects the same way.
//!
//! Scale control: set `ANN_SCALE=fast|default|full` (checked once per
//! process). `fast` exists so the whole grid can smoke-run in CI time;
//! `full` is the overnight setting.

#![forbid(unsafe_code)]

pub mod experiments;

use ann_eval::{timed_build, BuildReport};
use ann_graph::AnnIndex;
use ann_hcnng::{build_hcnng, HcnngParams};
use ann_hnsw::{Hnsw, HnswParams};
use ann_knng::{nn_descent, KnnGraph, NnDescentParams};
use ann_nsg::{build_nsg, build_ssg, NsgParams, SsgParams};
use ann_vamana::{build_vamana, VamanaParams};
use ann_vectors::synthetic::{mean_nn_distance, Recipe};
use ann_vectors::{brute_force_ground_truth, GroundTruth, Metric, VecStore};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use tau_mg::{build_tau_mng, TauMngParams};

/// Workspace-standard seed for every repro run (full determinism with
/// `ANN_THREADS=1`).
pub const REPRO_SEED: u64 = 0x5160_3023; // "SIGMOD 2023"

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale (~2k points): the whole grid runs in well under a
    /// minute; shapes are noisy.
    Fast,
    /// Session scale (~20k points): shapes are stable; minutes per binary.
    Default,
    /// Large scale (~60k points): closest to the paper's regime this
    /// machine affords.
    Full,
}

impl Scale {
    /// Read the scale from `ANN_SCALE`.
    pub fn from_env() -> Scale {
        match std::env::var("ANN_SCALE").unwrap_or_default().to_ascii_lowercase().as_str() {
            "fast" => Scale::Fast,
            "full" => Scale::Full,
            _ => Scale::Default,
        }
    }

    /// (base points, query count) at this scale.
    pub fn sizes(self) -> (usize, usize) {
        match self {
            Scale::Fast => (2_000, 100),
            Scale::Default => (15_000, 300),
            Scale::Full => (60_000, 1_000),
        }
    }

    /// The datasets the main comparison grid runs on at this scale.
    ///
    /// GIST-like (960-d) and the full complement only join at `Full` — their
    /// cost is dominated by dimensionality, not insight, at smoke scales.
    pub fn recipes(self) -> Vec<Recipe> {
        match self {
            Scale::Fast => vec![Recipe::SiftLike, Recipe::GloveLike],
            Scale::Default => {
                vec![Recipe::SiftLike, Recipe::GloveLike, Recipe::UqvLike, Recipe::MsongLike]
            }
            Scale::Full => vec![
                Recipe::SiftLike,
                Recipe::GistLike,
                Recipe::GloveLike,
                Recipe::CrawlLike,
                Recipe::MsongLike,
                Recipe::UqvLike,
                Recipe::UniformControl,
            ],
        }
    }
}

/// A dataset fully prepared for measurement: vectors, queries, deep ground
/// truth, τ₀ scale, and the shared kNN graph the refinement pipelines start
/// from.
pub struct ReproData {
    /// Dataset name ("sift-like", …).
    pub name: String,
    /// Search metric.
    pub metric: Metric,
    /// Indexed vectors.
    pub base: Arc<VecStore>,
    /// Query vectors.
    pub queries: VecStore,
    /// Exact top-100 answers for every query.
    pub gt: GroundTruth,
    /// Mean distance of a base point to its nearest neighbor (Euclidean) —
    /// the τ₀ unit used by the τ sweeps.
    pub tau0: f32,
    /// Shared approximate kNN graph (NN-Descent).
    pub knn: KnnGraph,
    /// Seconds spent building `knn` (charged to every kNN-consuming build).
    pub knn_seconds: f64,
}

/// kNN-graph degree shared by the refinement pipelines.
pub const KNN_K: usize = 48;

/// Grid default for τ as a fraction of τ₀ (the mean base-point NN
/// distance). Calibrated by experiment E6: small positive τ keeps the
/// slack "highway" edges MRNG would cut without saturating the degree cap;
/// τ on the order of τ₀ degenerates the graph toward a plain kNN list.
/// This mirrors the paper, which likewise tunes τ to a small
/// dataset-dependent value.
pub const TAU_MULT: f32 = 0.03;

/// Process-level caches: the repro binaries (and especially `repro_all`)
/// revisit the same datasets and contenders across experiments; preparing a
/// dataset (ground truth + NN-Descent) and building an index are by far the
/// dominant costs, so both are memoized per process. `e2_construction`
/// deliberately bypasses the index cache (its job is timing fresh builds)
/// and seeds it for everyone after it.
type PrepKey = (&'static str, usize, usize);
fn prep_cache() -> &'static Mutex<HashMap<PrepKey, Arc<ReproData>>> {
    static CACHE: OnceLock<Mutex<HashMap<PrepKey, Arc<ReproData>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

type IndexKey = (&'static str, String, usize);
/// A built index plus its construction report (cache entry).
pub struct BuiltIndex {
    /// The queryable index.
    pub index: Box<dyn AnnIndex>,
    /// Construction cost facts.
    pub report: BuildReport,
}
fn index_cache() -> &'static Mutex<HashMap<IndexKey, Arc<BuiltIndex>>> {
    static CACHE: OnceLock<Mutex<HashMap<IndexKey, Arc<BuiltIndex>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Prepare a dataset at the given scale (memoized per process).
pub fn prepare(recipe: Recipe, scale: Scale) -> Arc<ReproData> {
    let (n, nq) = scale.sizes();
    prepare_sized(recipe, n, nq)
}

/// Prepare a dataset with explicit sizes (memoized per process).
pub fn prepare_sized(recipe: Recipe, n: usize, nq: usize) -> Arc<ReproData> {
    let key = (recipe.name(), n, nq);
    if let Some(hit) = prep_cache().lock().unwrap().get(&key) {
        return hit.clone();
    }
    let data = Arc::new(prepare_uncached(recipe, n, nq));
    prep_cache().lock().unwrap().insert(key, data.clone());
    data
}

fn prepare_uncached(recipe: Recipe, n: usize, nq: usize) -> ReproData {
    let ds = recipe.build(n, nq, REPRO_SEED);
    let base = Arc::new(ds.base);
    let gt = brute_force_ground_truth(ds.metric, &base, &ds.queries, 100)
        .expect("ground truth at repro scale");
    let tau0 = mean_nn_distance(&base, 200.min(n), REPRO_SEED);
    let t0 = Instant::now();
    let knn = nn_descent(
        ds.metric,
        &base,
        NnDescentParams { k: KNN_K.min(n - 1), seed: REPRO_SEED, ..Default::default() },
    )
    .expect("kNN graph at repro scale");
    let knn_seconds = t0.elapsed().as_secs_f64();
    ReproData {
        name: ds.name,
        metric: ds.metric,
        base,
        queries: ds.queries,
        gt,
        tau0,
        knn,
        knn_seconds,
    }
}

/// The algorithms of the main comparison (the paper's contender set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// The paper's practical index (with τ = τ₀ by default).
    TauMng,
    /// HNSW baseline.
    Hnsw,
    /// NSG baseline.
    Nsg,
    /// SSG baseline.
    Ssg,
    /// Vamana (DiskANN) baseline.
    Vamana,
    /// HCNNG baseline (clustering/MST family).
    Hcnng,
}

impl Algo {
    /// Contenders in reporting order.
    pub const ALL: [Algo; 6] =
        [Algo::TauMng, Algo::Hnsw, Algo::Nsg, Algo::Ssg, Algo::Vamana, Algo::Hcnng];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::TauMng => "tau-MNG",
            Algo::Hnsw => "HNSW",
            Algo::Nsg => "NSG",
            Algo::Ssg => "SSG",
            Algo::Vamana => "Vamana",
            Algo::Hcnng => "HCNNG",
        }
    }

    /// Whether the build consumes the shared kNN graph (its time is then
    /// charged to this build).
    pub fn uses_knn(self) -> bool {
        matches!(self, Algo::TauMng | Algo::Nsg | Algo::Ssg)
    }
}

/// Comparison-grid construction parameters (one place, applied everywhere).
pub mod params {
    use super::*;

    /// HNSW at the grid's operating point.
    pub fn hnsw() -> HnswParams {
        HnswParams { m: 24, ef_construction: 256, seed: REPRO_SEED, keep_pruned: true }
    }

    /// NSG at the grid's operating point.
    pub fn nsg() -> NsgParams {
        NsgParams { r: 32, l: 128, c: 400 }
    }

    /// SSG at the grid's operating point.
    pub fn ssg() -> SsgParams {
        SsgParams { r: 32, angle_degrees: 60.0, c: 400, l: 128 }
    }

    /// Vamana at the grid's operating point.
    pub fn vamana() -> VamanaParams {
        VamanaParams { r: 48, l: 96, alpha: 1.2, seed: REPRO_SEED }
    }

    /// HCNNG at the grid's operating point.
    pub fn hcnng() -> HcnngParams {
        HcnngParams { num_trees: 20, leaf_size: 300, mst_max_degree: 3, seed: REPRO_SEED }
    }

    /// τ-MNG at the grid's operating point (τ in Euclidean units).
    pub fn tau_mng(tau: f32) -> TauMngParams {
        TauMngParams { tau, r: 40, l: 128, c: 400 }
    }
}

/// Build one contender over prepared data (memoized per process). The
/// report's `seconds` includes the shared kNN-graph time for the pipelines
/// that consume it.
pub fn build_algo(algo: Algo, data: &ReproData) -> Arc<BuiltIndex> {
    let key = (algo.name(), data.name.clone(), data.base.len());
    if let Some(hit) = index_cache().lock().unwrap().get(&key) {
        return hit.clone();
    }
    let built = Arc::new(build_algo_uncached(algo, data));
    index_cache().lock().unwrap().insert(key, built.clone());
    built
}

/// Build one contender without touching the cache (used by the
/// construction-time experiment), seeding the cache with the result.
pub fn build_algo_fresh(algo: Algo, data: &ReproData) -> Arc<BuiltIndex> {
    let built = Arc::new(build_algo_uncached(algo, data));
    let key = (algo.name(), data.name.clone(), data.base.len());
    index_cache().lock().unwrap().insert(key, built.clone());
    built
}

fn build_algo_uncached(algo: Algo, data: &ReproData) -> BuiltIndex {
    let (index, mut report): (Box<dyn AnnIndex>, BuildReport) = match algo {
        Algo::TauMng => {
            let (i, r) = timed_build(|| {
                build_tau_mng(
                    data.base.clone(),
                    data.metric,
                    &data.knn,
                    params::tau_mng(data.tau0 * TAU_MULT),
                )
                .expect("tau-MNG build")
            });
            (Box::new(i), r)
        }
        Algo::Hnsw => {
            let (i, r) = timed_build(|| {
                Hnsw::build(data.base.clone(), data.metric, params::hnsw()).expect("HNSW build")
            });
            (Box::new(i), r)
        }
        Algo::Nsg => {
            let (i, r) = timed_build(|| {
                build_nsg(data.base.clone(), data.metric, &data.knn, params::nsg())
                    .expect("NSG build")
            });
            (Box::new(i), r)
        }
        Algo::Ssg => {
            let (i, r) = timed_build(|| {
                build_ssg(data.base.clone(), data.metric, &data.knn, params::ssg())
                    .expect("SSG build")
            });
            (Box::new(i), r)
        }
        Algo::Vamana => {
            let (i, r) = timed_build(|| {
                build_vamana(data.base.clone(), data.metric, params::vamana())
                    .expect("Vamana build")
            });
            (Box::new(i), r)
        }
        Algo::Hcnng => {
            let (i, r) = timed_build(|| {
                build_hcnng(data.base.clone(), data.metric, params::hcnng()).expect("HCNNG build")
            });
            (Box::new(i), r)
        }
    };
    if algo.uses_knn() {
        report.seconds += data.knn_seconds;
    }
    BuiltIndex { index, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::Fast.sizes().0, 2_000);
        assert!(Scale::Full.recipes().len() > Scale::Fast.recipes().len());
    }

    #[test]
    fn prepare_and_build_every_algo_smoke() {
        let data = prepare_sized(Recipe::SiftLike, 600, 20);
        assert_eq!(data.gt.k(), 100);
        assert!(data.tau0 > 0.0);
        for algo in Algo::ALL {
            let built = build_algo(algo, &data);
            assert_eq!(built.index.name(), algo.name());
            assert!(built.report.graph.num_edges > 0, "{} built no edges", algo.name());
            let r = built.index.search(data.queries.get(0), 10, 50);
            assert_eq!(r.ids.len(), 10, "{} returned too few", algo.name());
            // Second call must hit the cache (same Arc).
            let again = build_algo(algo, &data);
            assert!(Arc::ptr_eq(&built, &again), "cache miss for {}", algo.name());
        }
    }

    #[test]
    fn knn_time_charged_to_pipelines() {
        assert!(Algo::TauMng.uses_knn());
        assert!(Algo::Nsg.uses_knn());
        assert!(!Algo::Hnsw.uses_knn());
        assert!(!Algo::Vamana.uses_knn());
    }
}
