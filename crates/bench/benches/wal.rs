//! Micro-benchmarks of the per-shard write-ahead log (DESIGN.md §7e): what
//! one journaled insert costs under each fsync policy, and how fast a
//! journal replays. Strict mode pays a real fsync plus a read-back verify
//! per append, so the sample counts are kept small and the gap to
//! `Batched`/`None` is the point of the comparison, not the absolute
//! numbers.

use ann_service::{read_wal_dir, DurabilityMode, Metrics, RealFs, ShardWal, SnapshotFs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ann_bench_wal_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn pseudo_vector(dim: usize, seed: u64) -> Vec<f32> {
    let mut s = seed | 1;
    (0..dim)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2_000) as f32 / 1_000.0 - 1.0
        })
        .collect()
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    // Strict fsyncs (and read-back-verifies) every record; keep the sample
    // budget small enough that the bench finishes on spinning storage.
    group.sample_size(10);
    let vector = pseudo_vector(128, 0xFEED);
    let modes = [
        ("strict", DurabilityMode::Strict),
        (
            "batched_64",
            DurabilityMode::Batched { max_records: 64, max_delay: Duration::from_secs(3600) },
        ),
        ("none", DurabilityMode::None),
    ];
    for (tag, mode) in modes {
        group.bench_with_input(BenchmarkId::from_parameter(tag), &mode, |b, &mode| {
            let dir = scratch_dir(tag);
            let fs: Arc<dyn SnapshotFs> = Arc::new(RealFs);
            let metrics = Arc::new(Metrics::new());
            let mut wal = ShardWal::fresh(&dir, 0, Arc::clone(&fs), mode, metrics);
            let mut ext = 0u64;
            b.iter(|| {
                ext += 1;
                wal.append_insert(black_box(ext), black_box(&vector)).expect("append")
            });
            drop(wal);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_replay");
    group.sample_size(20);
    // A journal of 1000 inserts, written once; the bench measures the
    // decode-and-verify read path recovery runs on.
    let dir = scratch_dir("replay");
    let fs: Arc<dyn SnapshotFs> = Arc::new(RealFs);
    let metrics = Arc::new(Metrics::new());
    let mut wal = ShardWal::fresh(&dir, 0, Arc::clone(&fs), DurabilityMode::None, metrics);
    let vector = pseudo_vector(128, 0xBEEF);
    for ext in 1..=1_000u64 {
        wal.append_insert(ext, &vector).expect("append");
    }
    wal.sync().expect("sync");
    drop(wal);
    group.bench_function("read_1000x128d", |b| {
        b.iter(|| {
            let replay = read_wal_dir(&fs, &dir, black_box(0)).expect("replay");
            assert_eq!(replay.records.len(), 1_000);
            replay.last_lsn
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(benches, bench_append, bench_replay);
criterion_main!(benches);
