//! Whole-query search benchmarks: one group per index over the same
//! SIFT-like corpus, at a low-L and a high-L operating point, plus the
//! τ-monotonic search options (two-phase / QEO) on the τ-MNG.

use ann_bench::{build_algo, prepare_sized, Algo};
use ann_graph::{AnnIndex, Scratch};
use ann_vectors::synthetic::Recipe;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tau_mg::TauSearchOptions;

const N: usize = 8_000;

fn bench_search(c: &mut Criterion) {
    let data = prepare_sized(Recipe::SiftLike, N, 64);
    let mut group = c.benchmark_group("search_k10");
    for algo in Algo::ALL {
        let built = build_algo(algo, &data);
        let mut scratch = Scratch::new(built.index.num_points());
        for l in [16usize, 128] {
            group.bench_with_input(BenchmarkId::new(algo.name(), l), &l, |b, &l| {
                let mut q = 0u32;
                b.iter(|| {
                    let r = built.index.search_with(
                        black_box(data.queries.get(q % data.queries.len() as u32)),
                        10,
                        l,
                        &mut scratch,
                    );
                    q = q.wrapping_add(1);
                    r.ids.len()
                });
            });
        }
    }
    group.finish();
}

fn bench_tau_search_options(c: &mut Criterion) {
    let data = prepare_sized(Recipe::SiftLike, N, 64);
    let built = build_algo(Algo::TauMng, &data);
    // Downcast through the concrete builder for option control.
    let knn = &data.knn;
    let index = tau_mg::build_tau_mng(
        data.base.clone(),
        data.metric,
        knn,
        ann_bench::params::tau_mng(data.tau0 * ann_bench::TAU_MULT),
    )
    .expect("tau-MNG");
    drop(built);
    let mut scratch = Scratch::new(index.num_points());
    let mut group = c.benchmark_group("tau_search_options");
    for (name, opts) in [
        ("plain", TauSearchOptions::plain()),
        ("two_phase", TauSearchOptions { two_phase: true, qeo: false }),
        ("two_phase_qeo", TauSearchOptions { two_phase: true, qeo: true }),
    ] {
        group.bench_function(name, |b| {
            let mut q = 0u32;
            b.iter(|| {
                let r = index.search_opts(
                    black_box(data.queries.get(q % data.queries.len() as u32)),
                    10,
                    64,
                    opts,
                    &mut scratch,
                );
                q = q.wrapping_add(1);
                r.ids.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search, bench_tau_search_options);
criterion_main!(benches);
