//! Distance-kernel micro-benchmarks: the innermost loop of everything.
//!
//! Run with `cargo bench -p ann-bench --bench distance`.

use ann_vectors::metric::{cosine_dissim, dot, l2_sq, reference};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn make_pair(dim: usize) -> (Vec<f32>, Vec<f32>) {
    let mut s = 0x9E37_79B9u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 1000) as f32 / 500.0 - 1.0
    };
    ((0..dim).map(|_| next()).collect(), (0..dim).map(|_| next()).collect())
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    for dim in [96usize, 128, 256, 420, 960] {
        let (a, b) = make_pair(dim);
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("l2_sq", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("l2_sq_naive", dim), &dim, |bench, _| {
            bench.iter(|| reference::l2_sq(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bench, _| {
            bench.iter(|| dot(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bench, _| {
            bench.iter(|| cosine_dissim(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
