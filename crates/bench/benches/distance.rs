//! Distance-kernel micro-benchmarks: the innermost loop of everything.
//!
//! Run with `cargo bench -p ann-bench --bench distance`.

use ann_vectors::metric::{cosine_dissim, dot, l2_sq, reference};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn make_pair(dim: usize) -> (Vec<f32>, Vec<f32>) {
    let mut s = 0x9E37_79B9u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 1000) as f32 / 500.0 - 1.0
    };
    ((0..dim).map(|_| next()).collect(), (0..dim).map(|_| next()).collect())
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    for dim in [96usize, 128, 256, 420, 960] {
        let (a, b) = make_pair(dim);
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("l2_sq", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("l2_sq_naive", dim), &dim, |bench, _| {
            bench.iter(|| reference::l2_sq(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bench, _| {
            bench.iter(|| dot(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bench, _| {
            bench.iter(|| cosine_dissim(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

/// Scalar vs SIMD dispatch arms side by side, plus the SQ8 asymmetric
/// kernel — the ratios the kernel-smoke CI gate asserts on.
fn bench_kernel_paths(c: &mut Criterion) {
    use ann_vectors::kernel::{scalar, simd};
    use ann_vectors::{Metric, Sq8Query, Sq8Store, VecStore};

    let mut group = c.benchmark_group("kernel_paths");
    for dim in [64usize, 128, 256, 960] {
        let (a, b) = make_pair(dim);
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("l2_sq/scalar", dim), &dim, |bench, _| {
            bench.iter(|| scalar::l2_sq(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("l2_sq/simd", dim), &dim, |bench, _| {
            bench.iter(|| simd::l2_sq(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("dot/scalar", dim), &dim, |bench, _| {
            bench.iter(|| scalar::dot(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("dot/simd", dim), &dim, |bench, _| {
            bench.iter(|| simd::dot(black_box(&a), black_box(&b)));
        });

        let store = VecStore::from_rows(std::slice::from_ref(&b)).unwrap();
        let sq8 = Sq8Store::quantize(&store);
        let sq = Sq8Query::new(Metric::L2, &a);
        group.bench_with_input(BenchmarkId::new("l2_sq/sq8", dim), &dim, |bench, _| {
            bench.iter(|| sq8.dist_to(Metric::L2, black_box(&sq), 0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_kernel_paths);
criterion_main!(benches);
