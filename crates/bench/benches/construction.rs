//! Construction benchmarks at small scale: τ-MNG against the baselines over
//! one shared corpus, plus NN-Descent itself (the pipelines' dominant
//! preprocessing step, as the paper's complexity analysis predicts).

use ann_graph::AnnIndex;
use ann_hnsw::{Hnsw, HnswParams};
use ann_knng::{brute_force_knn_graph, nn_descent, NnDescentParams};
use ann_nsg::{build_nsg, NsgParams};
use ann_vamana::{build_vamana, VamanaParams};
use ann_vectors::synthetic::{mean_nn_distance, Recipe};
use criterion::{criterion_group, criterion_main, Criterion, SamplingMode};
use std::sync::Arc;
use tau_mg::{build_tau_mng, TauMngParams};

const N: usize = 3_000;

fn bench_construction(c: &mut Criterion) {
    let dataset = Recipe::SiftLike.build(N, 10, 7);
    let metric = dataset.metric;
    let base = Arc::new(dataset.base);
    let tau = mean_nn_distance(&base, 100, 7) * 0.03;
    let knn = brute_force_knn_graph(metric, &base, 32).expect("knn");

    let mut group = c.benchmark_group("construction_3k");
    group.sample_size(10);
    group.sampling_mode(SamplingMode::Flat);
    group.bench_function("nn_descent_k32", |b| {
        b.iter(|| {
            nn_descent(metric, &base, NnDescentParams { k: 32, seed: 7, ..Default::default() })
                .expect("nn-descent")
                .num_nodes()
        });
    });
    group.bench_function("tau_mng", |b| {
        b.iter(|| {
            build_tau_mng(base.clone(), metric, &knn, TauMngParams { tau, ..Default::default() })
                .expect("tau-MNG")
                .graph_stats()
                .num_edges
        });
    });
    group.bench_function("nsg", |b| {
        b.iter(|| {
            build_nsg(base.clone(), metric, &knn, NsgParams::default())
                .expect("NSG")
                .graph_stats()
                .num_edges
        });
    });
    group.bench_function("hnsw", |b| {
        b.iter(|| {
            Hnsw::build(base.clone(), metric, HnswParams::default())
                .expect("HNSW")
                .graph_stats()
                .num_edges
        });
    });
    group.bench_function("vamana", |b| {
        b.iter(|| {
            build_vamana(base.clone(), metric, VamanaParams::default())
                .expect("Vamana")
                .graph_stats()
                .num_edges
        });
    });
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
