//! Micro-benchmarks of the search-side data structures: the bounded sorted
//! pool and the epoch visited set (DESIGN.md §4 justifies both choices).

use ann_graph::{Pool, VisitedSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn pseudo_dists(n: usize) -> Vec<f32> {
    let mut s = 0xABCDu64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 100_000) as f32 / 100.0
        })
        .collect()
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_insert");
    let dists = pseudo_dists(4096);
    for cap in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut pool = Pool::new(cap);
                for (i, &d) in dists.iter().enumerate() {
                    pool.insert(black_box(d), i as u32);
                }
                pool.len()
            });
        });
    }
    group.finish();
}

fn bench_visited(c: &mut Criterion) {
    let mut group = c.benchmark_group("visited_set");
    group.bench_function("insert_100k", |b| {
        let mut v = VisitedSet::new(100_000);
        b.iter(|| {
            v.clear();
            let mut acc = 0u32;
            for i in (0..100_000u32).step_by(7) {
                acc += v.insert(black_box(i)) as u32;
            }
            acc
        });
    });
    group.bench_function("clear_is_o1", |b| {
        let mut v = VisitedSet::new(1_000_000);
        v.insert(3);
        b.iter(|| {
            v.clear();
            black_box(v.contains(3))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pool, bench_visited);
criterion_main!(benches);
