//! Self-tests for the deterministic checker: the acceptance contract
//! (determinism, ≥1000 distinct schedules, seeded bugs caught) plus the
//! failure detectors (deadlock, lost wakeup, torn publish, ack reorder).

use ann_check::scenarios::{self, QueueBug};
use ann_check::sync::Mutex;
use ann_check::{check, Config, FailureKind, Strategy};
use std::sync::{Arc, PoisonError};

fn un<T>(r: std::sync::LockResult<T>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Same seed → same digest (the sequence of explored interleavings is a
/// pure function of the seed); different seed → different exploration.
#[test]
fn deterministic_per_seed() {
    let body = || {
        let n = Arc::new(Mutex::new(0u64));
        let ts: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                ann_check::thread::spawn(move || {
                    for _ in 0..3 {
                        *un(n.lock()) += 1;
                    }
                })
            })
            .collect();
        for t in ts {
            t.join().expect("worker");
        }
        assert_eq!(*un(n.lock()), 9);
    };
    let a = check(&Config::random(128, 42), body);
    let b = check(&Config::random(128, 42), body);
    let c = check(&Config::random(128, 43), body);
    a.assert_ok();
    assert_eq!(a.digest, b.digest, "same seed must replay the same schedules");
    assert_eq!(a.distinct_schedules, b.distinct_schedules);
    assert_ne!(a.digest, c.digest, "different seed should explore differently");
}

/// The acceptance floor: ≥1000 distinct interleavings explored per
/// scenario, deterministically.
#[test]
fn explores_a_thousand_distinct_schedules() {
    let cfg = Config::random(1500, 0xA11CE);
    let body = || {
        let n = Arc::new(Mutex::new(0u64));
        let ts: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                ann_check::thread::spawn(move || {
                    for _ in 0..8 {
                        *un(n.lock()) += 1;
                    }
                })
            })
            .collect();
        for t in ts {
            t.join().expect("worker");
        }
    };
    let r = check(&cfg, body);
    r.assert_ok();
    assert!(
        r.distinct_schedules >= 1000,
        "expected >= 1000 distinct schedules, got {}",
        r.distinct_schedules
    );
    let r2 = check(&cfg, body);
    assert_eq!(r.digest, r2.digest);
}

/// Classic ABBA deadlock is found and reported as such.
#[test]
fn detects_abba_deadlock() {
    let r = check(&Config::random(256, 3), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = ann_check::thread::spawn(move || {
            let _gb = un(b2.lock());
            let _ga = un(a2.lock());
        });
        let _ga = un(a.lock());
        let _gb = un(b.lock());
        drop(_gb);
        drop(_ga);
        let _ = t.join();
    });
    let f = r.failure.expect("ABBA deadlock must be reachable");
    assert_eq!(f.kind, FailureKind::Deadlock, "got: {f}");
}

/// DFS with a preemption budget also finds the ABBA deadlock, and its
/// exploration is deterministic (no seed involved).
#[test]
fn dfs_finds_deadlock_too() {
    let body = || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = ann_check::thread::spawn(move || {
            let _gb = un(b2.lock());
            let _ga = un(a2.lock());
        });
        let _ga = un(a.lock());
        let _gb = un(b.lock());
        drop(_gb);
        drop(_ga);
        let _ = t.join();
    };
    let r = check(&Config::dfs(4096, 2), body);
    let f = r.failure.expect("DFS must reach the ABBA interleaving");
    assert_eq!(f.kind, FailureKind::Deadlock);
    let r2 = check(&Config::dfs(4096, 2), body);
    assert_eq!(
        Some(f.schedule),
        r2.failure.map(|f| f.schedule),
        "DFS must fail at the same schedule index every run"
    );
}

/// Seeded bug: WAL ack-before-journal reorder is caught (the observer sees
/// an acknowledged LSN missing from the journal).
#[test]
fn catches_ack_before_journal_reorder() {
    let cfg = Config::random(2000, 0x5eed);
    scenarios::wal_ack(&cfg, false).assert_ok();
    let f = scenarios::wal_ack(&cfg, true).failure.expect("reorder must be caught");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("acked but not journaled"), "got: {}", f.message);
}

/// Seeded bug: dropping the Condvar predicate loop is caught.
#[test]
fn catches_dropped_predicate_loop() {
    let cfg = Config::random(2000, 0x5eed);
    scenarios::queue_worker(&cfg, QueueBug::None).assert_ok();
    let f = scenarios::queue_worker(&cfg, QueueBug::NoPredicateLoop)
        .failure
        .expect("missing predicate loop must be caught");
    assert_eq!(f.kind, FailureKind::Panic, "got: {f}");
}

/// Seeded bug: a producer that forgets to notify strands a waiter — the
/// lost-wakeup shape, reported as a deadlock with the blocked-thread table.
#[test]
fn catches_missed_notify_as_deadlock() {
    let cfg = Config::random(2000, 0x5eed);
    let f = scenarios::queue_worker(&cfg, QueueBug::MissedNotify)
        .failure
        .expect("missed notify must strand a waiter");
    assert_eq!(f.kind, FailureKind::Deadlock, "got: {f}");
    assert!(f.message.contains("Condvar::wait"), "got: {}", f.message);
}

/// Seeded bug: a torn two-step publish is observed by a reader.
#[test]
fn catches_torn_publish() {
    let cfg = Config::random(2000, 0x5eed);
    scenarios::publish_load(&cfg, false).assert_ok();
    let f = scenarios::publish_load(&cfg, true)
        .failure
        .expect("torn publish must be caught");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("torn snapshot"), "got: {}", f.message);
}

/// The remaining built-in protocol models hold under both strategies.
#[test]
fn correct_models_pass_both_strategies() {
    scenarios::shard_fanout(&Config::random(600, 9)).assert_ok();
    let mut dfs = Config::dfs(600, 2);
    dfs.strategy = Strategy::Dfs;
    scenarios::shard_fanout(&dfs).assert_ok();
    scenarios::queue_worker(&dfs, QueueBug::None).assert_ok();
}

/// mpsc models: bounded backpressure, disconnect errors, try_send Full.
#[test]
fn channel_model_semantics() {
    use ann_check::sync::mpsc;
    let r = check(&Config::random(400, 11), || {
        let (tx, rx) = mpsc::sync_channel::<u64>(1);
        let t = ann_check::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        for v in 0..3 {
            tx.send(v).expect("receiver alive");
        }
        drop(tx);
        let got = t.join().expect("drain");
        assert_eq!(got, vec![0, 1, 2], "bounded channel must stay FIFO and lossless");
    });
    r.assert_ok();

    // Pass-through (no execution active): std-flavored error surface.
    let (tx, rx) = mpsc::sync_channel::<u64>(1);
    tx.try_send(1).expect("capacity free");
    assert!(matches!(tx.try_send(2), Err(mpsc::TrySendError::Full(2))));
    drop(rx);
    assert!(matches!(tx.try_send(3), Err(mpsc::TrySendError::Disconnected(3))));
    let (tx, rx) = mpsc::channel::<u64>();
    tx.send(7).expect("receiver alive");
    drop(tx);
    assert_eq!(rx.recv(), Ok(7));
    assert!(rx.recv().is_err());
}
