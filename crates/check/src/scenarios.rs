//! Built-in protocol models mirroring the serving stack's four core
//! concurrency protocols, each with seeded-buggy variants.
//!
//! These are *models*: small programs over the instrumented [`crate::sync`]
//! primitives that distill a protocol to its ordering contract. The service
//! crate additionally model-checks the real types end to end (see
//! `crates/service/tests/concurrency_check.rs`); the models here are what
//! the `ann-check` binary runs, and the buggy variants are the regression
//! proof that the checker actually catches the bug classes it claims to
//! (torn publish, dropped predicate loop, missed notify, ack-before-journal).

use crate::runtime::{check, Config, Report};
use crate::sync::{Condvar, Mutex, RwLock};
use crate::thread;
use std::collections::VecDeque;
use std::sync::{Arc, PoisonError};

fn un<T>(r: std::sync::LockResult<T>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// RCU snapshot publish vs. concurrent load.
///
/// A publisher installs generations 1..=3 of a `(generation, stamp)`
/// snapshot; two readers assert every observed snapshot is internally
/// consistent (`stamp == gen * 3 + 1`) and generations are monotone.
/// With `torn_publish` the publisher installs the two fields under
/// *separate* write guards, opening the torn-read window the checker must
/// find.
pub fn publish_load(config: &Config, torn_publish: bool) -> Report {
    check(config, move || {
        let cell = Arc::new(RwLock::new((0u64, 1u64)));
        let publisher = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for gen in 1..=3u64 {
                    if torn_publish {
                        // BUG: two-step publish — readers can observe the
                        // new generation with the old stamp.
                        un(cell.write()).0 = gen;
                        un(cell.write()).1 = gen * 3 + 1;
                    } else {
                        *un(cell.write()) = (gen, gen * 3 + 1);
                    }
                }
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let mut last_gen = 0u64;
                    for _ in 0..3 {
                        let (gen, stamp) = *un(cell.read());
                        assert_eq!(stamp, gen * 3 + 1, "torn snapshot: gen/stamp mismatch");
                        assert!(gen >= last_gen, "generation went backwards");
                        last_gen = gen;
                    }
                })
            })
            .collect();
        publisher.join().expect("publisher");
        for r in readers {
            r.join().expect("reader");
        }
    })
}

/// Seeded bug selector for [`queue_worker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueBug {
    /// Correct protocol.
    None,
    /// `Condvar::wait` guarded by `if` instead of a predicate loop.
    NoPredicateLoop,
    /// Producer sets the shutdown flag without notifying waiters.
    MissedNotify,
}

/// Bounded-queue submit vs. worker drain vs. shutdown (the batched-queue
/// deadline path distilled to its condvar protocol).
///
/// One producer pushes two jobs and signals shutdown; two workers drain
/// under a `Condvar`. `QueueBug::NoPredicateLoop` lets a worker pop an
/// empty queue after a consumed wakeup (caught as a panic);
/// `QueueBug::MissedNotify` strands a waiter forever (caught as a
/// deadlock — the lost-wakeup shape).
pub fn queue_worker(config: &Config, bug: QueueBug) -> Report {
    struct Q {
        jobs: Mutex<(VecDeque<u64>, bool)>,
        cv: Condvar,
    }
    check(config, move || {
        let q = Arc::new(Q { jobs: Mutex::new((VecDeque::new(), false)), cv: Condvar::new() });
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut drained = 0u64;
                    loop {
                        let mut st = un(q.jobs.lock());
                        if bug == QueueBug::NoPredicateLoop {
                            // BUG: single check — a wakeup consumed by the
                            // other worker leaves the queue empty here.
                            if st.0.is_empty() && !st.1 {
                                st = un(q.cv.wait(st));
                            }
                        } else {
                            while st.0.is_empty() && !st.1 {
                                st = un(q.cv.wait(st));
                            }
                        }
                        if let Some(job) = st.0.pop_front() {
                            drained += job;
                        } else if st.1 {
                            return drained;
                        } else if bug == QueueBug::NoPredicateLoop {
                            panic!("worker woke to an empty queue without shutdown");
                        }
                    }
                })
            })
            .collect();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for job in 1..=2u64 {
                    un(q.jobs.lock()).0.push_back(job);
                    q.cv.notify_one();
                }
                un(q.jobs.lock()).1 = true;
                if bug != QueueBug::MissedNotify {
                    q.cv.notify_all();
                }
            })
        };
        producer.join().expect("producer");
        let total: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
        assert_eq!(total, 3, "jobs lost or duplicated");
    })
}

/// WAL append/ack ordering contract: an LSN may be acknowledged to the
/// client only after it is journaled (append-before-ack), so an observer
/// that reads the acked set *then* the journal must find every acked LSN
/// journaled — the exact happens-before edge crash replay relies on.
/// `ack_before_journal` reverts the order, reintroducing the bug class the
/// WAL exists to prevent.
pub fn wal_ack(config: &Config, ack_before_journal: bool) -> Report {
    check(config, move || {
        let journal: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let acked: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let writer = {
            let journal = Arc::clone(&journal);
            let acked = Arc::clone(&acked);
            thread::spawn(move || {
                for lsn in 1..=3u64 {
                    if ack_before_journal {
                        // BUG: client sees the ack while a crash here would
                        // lose the record.
                        un(acked.lock()).push(lsn);
                        un(journal.lock()).push(lsn);
                    } else {
                        un(journal.lock()).push(lsn);
                        un(acked.lock()).push(lsn);
                    }
                }
            })
        };
        let observer = {
            let journal = Arc::clone(&journal);
            let acked = Arc::clone(&acked);
            thread::spawn(move || {
                for _ in 0..3 {
                    // Read acked FIRST: the contract is directional.
                    let a: Vec<u64> = un(acked.lock()).clone();
                    let j: Vec<u64> = un(journal.lock()).clone();
                    for lsn in a {
                        assert!(
                            j.contains(&lsn),
                            "LSN {lsn} acked but not journaled (ack-before-journal reorder)"
                        );
                    }
                }
            })
        };
        writer.join().expect("writer");
        observer.join().expect("observer");
    })
}

/// Shard quarantine vs. fan-out: a publisher bumps per-shard generations,
/// a health monitor quarantines shard 1, and a fan-out reader asserts the
/// healthy set never goes empty (shard 0 is never quarantined) and each
/// consulted shard's generation is monotone.
pub fn shard_fanout(config: &Config) -> Report {
    struct Shard {
        gen: Mutex<u64>,
        healthy: Mutex<bool>,
    }
    check(config, || {
        let shards: Arc<Vec<Shard>> = Arc::new(
            (0..2)
                .map(|_| Shard { gen: Mutex::new(0), healthy: Mutex::new(true) })
                .collect(),
        );
        let publisher = {
            let shards = Arc::clone(&shards);
            thread::spawn(move || {
                for _ in 0..2 {
                    for s in shards.iter() {
                        *un(s.gen.lock()) += 1;
                    }
                }
            })
        };
        let monitor = {
            let shards = Arc::clone(&shards);
            thread::spawn(move || {
                *un(shards[1].healthy.lock()) = false;
            })
        };
        let reader = {
            let shards = Arc::clone(&shards);
            thread::spawn(move || {
                let mut last = vec![0u64; shards.len()];
                for _ in 0..2 {
                    let mut consulted = 0usize;
                    for (i, s) in shards.iter().enumerate() {
                        if !*un(s.healthy.lock()) {
                            continue;
                        }
                        consulted += 1;
                        let g = *un(s.gen.lock());
                        assert!(g >= last[i], "shard generation went backwards");
                        last[i] = g;
                    }
                    assert!(consulted >= 1, "quarantine emptied the fan-out set");
                }
            })
        };
        publisher.join().expect("publisher");
        monitor.join().expect("monitor");
        reader.join().expect("reader");
    })
}
