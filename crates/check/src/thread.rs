//! Instrumented thread spawn/join.
//!
//! Inside a checker execution, [`spawn`] registers a *model* thread with
//! the scheduler: a real OS thread is created (so borrows, panics, and TLS
//! behave exactly as in production) but it only runs when the controller
//! hands it the active turn. Outside an execution this delegates to
//! `std::thread`.

use crate::runtime::{self, Execution};
use std::sync::{Arc, Mutex, PoisonError};

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T>(Inner<T>);

enum Inner<T> {
    /// Plain `std` thread (no checker execution active at spawn time).
    Os(std::thread::JoinHandle<T>),
    /// Model thread owned by a checker execution.
    Model {
        exec: Arc<Execution>,
        tid: usize,
        slot: Arc<Mutex<Option<T>>>,
    },
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Inner::Os(_) => f.write_str("JoinHandle(os)"),
            Inner::Model { tid, .. } => write!(f, "JoinHandle(model tid {tid})"),
        }
    }
}

/// Spawn `f`; under the checker the new thread becomes schedulable at the
/// spawner's next schedule point.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if let Some((exec, me)) = runtime::current() {
        let tid = exec.register_thread();
        let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let out = Arc::clone(&slot);
        exec.launch(tid, move || {
            let v = f();
            *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
        });
        // Spawning is itself a visible event: yield so the scheduler may
        // run the child before the spawner's next instruction.
        exec.schedule_point(me);
        JoinHandle(Inner::Model { exec, tid, slot })
    } else {
        JoinHandle(Inner::Os(std::thread::spawn(f)))
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result.
    ///
    /// # Errors
    /// Like `std`: the panic payload if the thread panicked. (For model
    /// threads the checker has already recorded the panic as a schedule
    /// failure; the payload returned here is a placeholder.)
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Os(h) => h.join(),
            Inner::Model { exec, tid, slot } => {
                if let Some((_, me)) = runtime::current() {
                    exec.schedule_point(me);
                    while exec.join_requires_block(me, tid) {
                        exec.block(me, "JoinHandle::join");
                    }
                }
                match slot.lock().unwrap_or_else(PoisonError::into_inner).take() {
                    Some(v) => Ok(v),
                    None => Err(Box::new("ann-check: joined thread did not produce a value")),
                }
            }
        }
    }

    /// Whether the thread has finished (model threads only report what the
    /// scheduler has observed).
    pub fn is_finished(&self) -> bool {
        match &self.0 {
            Inner::Os(h) => h.is_finished(),
            Inner::Model { exec, tid, .. } => exec.is_finished(*tid),
        }
    }
}

/// Yield: a pure schedule point under the checker, `std` yield otherwise.
pub fn yield_now() {
    if let Some((exec, me)) = runtime::current() {
        exec.schedule_point(me);
    } else {
        std::thread::yield_now();
    }
}
