//! `ann-check` CLI: run the built-in protocol models under a bounded,
//! deterministic schedule budget. Exit code 0 when every scenario passes,
//! 1 on the first failing schedule (printed with its trace and seed).
//!
//! ```text
//! cargo run -p ann-check -- --schedules 2000 [--seed N] [--preemptions P]
//! ```

use ann_check::scenarios::{self, QueueBug};
use ann_check::{Config, Report, Strategy};

fn usage() -> ! {
    eprintln!("usage: ann-check [--schedules N] [--seed N] [--preemptions P] [--dfs]");
    std::process::exit(2)
}

fn parse_args() -> Config {
    let mut cfg = Config::default().with_env_overrides();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut num = |what: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("ann-check: {what} expects a number");
                usage()
            })
        };
        match flag.as_str() {
            "--schedules" => cfg.schedules = num("--schedules") as usize,
            "--seed" => cfg.seed = num("--seed"),
            "--preemptions" => cfg.max_preemptions = num("--preemptions") as usize,
            "--dfs" => cfg.strategy = Strategy::Dfs,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("ann-check: unknown flag {other}");
                usage()
            }
        }
    }
    cfg
}

fn run(name: &str, report: &Report) -> bool {
    match &report.failure {
        None => {
            println!(
                "ok   {name}: {} schedules ({} distinct), digest {:#018x}",
                report.schedules_run, report.distinct_schedules, report.digest
            );
            true
        }
        Some(f) => {
            println!("FAIL {name}: {f}");
            false
        }
    }
}

fn main() {
    let cfg = parse_args();
    println!(
        "ann-check: {} schedules/scenario, seed {:#x}, strategy {:?}",
        cfg.schedules, cfg.seed, cfg.strategy
    );
    let mut ok = true;
    ok &= run("publish-vs-load", &scenarios::publish_load(&cfg, false));
    ok &= run("queue-submit-drain-shutdown", &scenarios::queue_worker(&cfg, QueueBug::None));
    ok &= run("wal-append-before-ack", &scenarios::wal_ack(&cfg, false));
    ok &= run("shard-quarantine-fanout", &scenarios::shard_fanout(&cfg));
    if !ok {
        std::process::exit(1);
    }
}
