//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Each type wraps the real `std` primitive (for data storage and for
//! pass-through use outside a checker execution) plus a *model* state the
//! scheduler controls. Inside a [`crate::check`] execution, every
//! operation is a schedule point and every blocking operation parks the
//! model thread until another thread's operation unblocks it — so the
//! controller, not the OS, decides every interleaving. Outside an
//! execution the types degrade to thin wrappers with `std` semantics, so a
//! crate built with `--cfg ann_check` still runs its ordinary tests.
//!
//! Two invariants make the wrappers safe without `unsafe`:
//!
//! 1. only one model thread executes at a time, so the inner `std` lock is
//!    never contended once the model grants ownership;
//! 2. guard teardown never yields (a schedule point in `Drop` could panic
//!    during an abort unwind); releasing only flips model state and wakes
//!    waiters, and the next instrumented operation returns control.

use crate::runtime::{self, Execution};
use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::{Condvar as StdCondvar, LockResult, Mutex as StdMutex, PoisonError};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MutexModel {
    held: bool,
    waiters: Vec<usize>,
}

/// Instrumented mutual-exclusion lock (`std::sync::Mutex` shape).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    model: StdMutex<MutexModel>,
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
    modeled: bool,
}

impl<T> Mutex<T> {
    /// New unlocked mutex holding `t`.
    pub fn new(t: T) -> Self {
        Mutex { model: StdMutex::new(MutexModel::default()), inner: StdMutex::new(t) }
    }

    /// Consume the mutex, returning the protected data (`std` shape).
    /// Ownership proves no thread can hold or wait on the lock, so there
    /// is no model state to update.
    ///
    /// # Errors
    /// Propagates `std` poisoning of the protected data, recoverable via
    /// [`PoisonError::into_inner`] exactly like `std`.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

fn model_lock<M>(m: &StdMutex<M>) -> std::sync::MutexGuard<'_, M> {
    // Model state is only mutated between schedule points (never across a
    // panic), so poisoning is unreachable; recover defensively.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, parking the model thread while another holds the lock.
    ///
    /// # Errors
    /// Propagates `std` poisoning of the protected data (a thread panicked
    /// while holding the guard), with the guard recoverable via
    /// [`PoisonError::into_inner`] exactly like `std`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let modeled = if let Some((exec, me)) = runtime::current() {
            exec.schedule_point(me);
            loop {
                let mut m = model_lock(&self.model);
                if !m.held {
                    m.held = true;
                    break;
                }
                m.waiters.push(me);
                drop(m);
                exec.block(me, "Mutex::lock");
            }
            true
        } else {
            false
        };
        // Under the model the inner lock is guaranteed free here.
        wrap_guard(self.inner.lock(), |g| MutexGuard { inner: Some(g), lock: self, modeled })
    }
}

fn release_mutex_model(lock_model: &StdMutex<MutexModel>, exec: &Arc<Execution>) {
    let wake = {
        let mut m = model_lock(lock_model);
        m.held = false;
        std::mem::take(&mut m.waiters)
    };
    for w in wake {
        exec.unblock(w);
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if self.modeled {
            if let Some((exec, _)) = runtime::current() {
                release_mutex_model(&self.lock.model, &exec);
            }
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard accessed after teardown")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard accessed after teardown")
    }
}

/// Map a `std` lock result onto one of our guards, preserving poisoning.
fn wrap_guard<G, O>(res: LockResult<G>, wrap: impl FnOnce(G) -> O) -> LockResult<O> {
    match res {
        Ok(g) => Ok(wrap(g)),
        Err(pe) => Err(PoisonError::new(wrap(pe.into_inner()))),
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct RwModel {
    writer: bool,
    readers: usize,
    waiters: Vec<usize>,
}

/// Instrumented reader-writer lock (`std::sync::RwLock` shape).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    model: StdMutex<RwModel>,
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    lock: &'a RwLock<T>,
    modeled: bool,
}

/// Guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    lock: &'a RwLock<T>,
    modeled: bool,
}

impl<T> RwLock<T> {
    /// New unlocked lock holding `t`.
    pub fn new(t: T) -> Self {
        RwLock { model: StdMutex::new(RwModel::default()), inner: std::sync::RwLock::new(t) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared; parks while a writer holds the lock.
    ///
    /// # Errors
    /// Propagates `std` poisoning, recoverable via
    /// [`PoisonError::into_inner`].
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let modeled = if let Some((exec, me)) = runtime::current() {
            exec.schedule_point(me);
            loop {
                let mut m = model_lock(&self.model);
                if !m.writer {
                    m.readers += 1;
                    break;
                }
                m.waiters.push(me);
                drop(m);
                exec.block(me, "RwLock::read");
            }
            true
        } else {
            false
        };
        wrap_guard(self.inner.read(), |g| RwLockReadGuard { inner: Some(g), lock: self, modeled })
    }

    /// Acquire exclusive; parks while any reader or writer holds the lock.
    ///
    /// # Errors
    /// Propagates `std` poisoning, recoverable via
    /// [`PoisonError::into_inner`].
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let modeled = if let Some((exec, me)) = runtime::current() {
            exec.schedule_point(me);
            loop {
                let mut m = model_lock(&self.model);
                if !m.writer && m.readers == 0 {
                    m.writer = true;
                    break;
                }
                m.waiters.push(me);
                drop(m);
                exec.block(me, "RwLock::write");
            }
            true
        } else {
            false
        };
        wrap_guard(self.inner.write(), |g| RwLockWriteGuard { inner: Some(g), lock: self, modeled })
    }
}

fn release_rw_model(lock_model: &StdMutex<RwModel>, exec: &Arc<Execution>, write: bool) {
    let wake = {
        let mut m = model_lock(lock_model);
        if write {
            m.writer = false;
        } else {
            m.readers = m.readers.saturating_sub(1);
        }
        std::mem::take(&mut m.waiters)
    };
    for w in wake {
        exec.unblock(w);
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if self.modeled {
            if let Some((exec, _)) = runtime::current() {
                release_rw_model(&self.lock.model, &exec, false);
            }
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if self.modeled {
            if let Some((exec, _)) = runtime::current() {
                release_rw_model(&self.lock.model, &exec, true);
            }
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard accessed after teardown")
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard accessed after teardown")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard accessed after teardown")
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct CvModel {
    /// Parked model threads, FIFO; a notify that finds this empty is a
    /// no-op — exactly the semantics that makes lost wakeups reachable for
    /// the scheduler to find.
    waiters: VecDeque<usize>,
}

/// Instrumented condition variable (`std::sync::Condvar` shape).
#[derive(Debug, Default)]
pub struct Condvar {
    model: StdMutex<CvModel>,
    inner: StdCondvar,
}

impl Condvar {
    /// New condvar with no waiters.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Atomically release `guard`'s mutex and park until notified, then
    /// reacquire. As with `std`, callers must re-check their predicate in a
    /// loop (the sync-hygiene lint enforces it in ported modules).
    ///
    /// # Errors
    /// Propagates `std` poisoning of the reacquired mutex.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if let Some((exec, me)) = runtime::current() {
            let lock = guard.lock;
            // Register before releasing: in the model, a notify can only run
            // after this thread yields, so the handoff itself is race-free —
            // every *protocol*-level lost wakeup (notify before wait) is
            // still fully explorable by schedule choice.
            model_lock(&self.model).waiters.push_back(me);
            drop(guard); // releases model + inner mutex, no yield
            exec.block(me, "Condvar::wait");
            lock.lock()
        } else {
            let lock = guard.lock;
            let mut g = guard;
            let std_guard = g.inner.take().expect("guard accessed after teardown");
            drop(g); // defused: inner already taken, not modeled
            wrap_guard(self.inner.wait(std_guard), |sg| MutexGuard {
                inner: Some(sg),
                lock,
                modeled: false,
            })
        }
    }

    /// [`Condvar::wait`] in a predicate loop — the hygienic form.
    ///
    /// # Errors
    /// Propagates `std` poisoning of the reacquired mutex.
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<MutexGuard<'a, T>>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self.wait(guard)?;
        }
        Ok(guard)
    }

    /// Wake one parked waiter (no-op when none is parked).
    pub fn notify_one(&self) {
        if let Some((exec, me)) = runtime::current() {
            exec.schedule_point(me);
            let woken = model_lock(&self.model).waiters.pop_front();
            if let Some(w) = woken {
                exec.unblock(w);
            }
        } else {
            self.inner.notify_one();
        }
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        if let Some((exec, me)) = runtime::current() {
            exec.schedule_point(me);
            let woken: Vec<usize> = model_lock(&self.model).waiters.drain(..).collect();
            for w in woken {
                exec.unblock(w);
            }
        } else {
            self.inner.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// mpsc channels
// ---------------------------------------------------------------------------

/// Instrumented `std::sync::mpsc` subset: `channel`, `sync_channel`, and
/// the blocking/non-blocking send/recv surface the serving stack uses. The
/// error types are re-used from `std` so call sites match unchanged.
pub mod mpsc {
    use super::{model_lock, runtime, Arc, StdCondvar, StdMutex, VecDeque};
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

    #[derive(Debug)]
    struct ChanState<T> {
        q: VecDeque<T>,
        /// `None` for unbounded channels.
        cap: Option<usize>,
        senders: usize,
        rx_alive: bool,
        recv_waiters: Vec<usize>,
        send_waiters: Vec<usize>,
    }

    #[derive(Debug)]
    struct Shared<T> {
        st: StdMutex<ChanState<T>>,
        cv: StdCondvar,
    }

    impl<T> Shared<T> {
        fn new(cap: Option<usize>) -> Arc<Self> {
            Arc::new(Shared {
                st: StdMutex::new(ChanState {
                    q: VecDeque::new(),
                    cap,
                    senders: 1,
                    rx_alive: true,
                    recv_waiters: Vec::new(),
                    send_waiters: Vec::new(),
                }),
                cv: StdCondvar::new(),
            })
        }

        fn wake(&self, exec: &Arc<runtime::Execution>, waiters: Vec<usize>) {
            for w in waiters {
                exec.unblock(w);
            }
        }
    }

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct SyncSender<T>(Arc<Shared<T>>);

    /// Receiving half of either channel flavor.
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Unbounded FIFO channel, like `std::sync::mpsc::channel`.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let sh = Shared::new(None);
        (Sender(Arc::clone(&sh)), Receiver(sh))
    }

    /// Bounded FIFO channel, like `std::sync::mpsc::sync_channel`.
    /// Capacity 0 (rendezvous) is modeled as capacity 1.
    pub fn sync_channel<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        let sh = Shared::new(Some(cap.max(1)));
        (SyncSender(Arc::clone(&sh)), Receiver(sh))
    }

    fn clone_half<T>(sh: &Arc<Shared<T>>) -> Arc<Shared<T>> {
        model_lock(&sh.st).senders += 1;
        Arc::clone(sh)
    }

    fn drop_sender<T>(sh: &Arc<Shared<T>>) {
        let (last, wake) = {
            let mut st = model_lock(&sh.st);
            st.senders = st.senders.saturating_sub(1);
            let last = st.senders == 0;
            let wake = if last { std::mem::take(&mut st.recv_waiters) } else { Vec::new() };
            (last, wake)
        };
        if last {
            if let Some((exec, _)) = runtime::current() {
                sh.wake(&exec, wake);
            }
            sh.cv.notify_all();
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(clone_half(&self.0))
        }
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            SyncSender(clone_half(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            drop_sender(&self.0);
        }
    }

    impl<T> Drop for SyncSender<T> {
        fn drop(&mut self) {
            drop_sender(&self.0);
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let wake = {
                let mut st = model_lock(&self.0.st);
                st.rx_alive = false;
                st.q.clear();
                std::mem::take(&mut st.send_waiters)
            };
            if let Some((exec, _)) = runtime::current() {
                self.0.wake(&exec, wake);
            }
            self.0.cv.notify_all();
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `t` (never blocks: unbounded).
        ///
        /// # Errors
        /// `SendError(t)` when the receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            if let Some((exec, me)) = runtime::current() {
                exec.schedule_point(me);
                let wake = {
                    let mut st = model_lock(&self.0.st);
                    if !st.rx_alive {
                        return Err(SendError(t));
                    }
                    st.q.push_back(t);
                    std::mem::take(&mut st.recv_waiters)
                };
                self.0.wake(&exec, wake);
            } else {
                let mut st = model_lock(&self.0.st);
                if !st.rx_alive {
                    return Err(SendError(t));
                }
                st.q.push_back(t);
                drop(st);
                self.0.cv.notify_all();
            }
            Ok(())
        }
    }

    impl<T> SyncSender<T> {
        /// Enqueue `t`, parking while the queue is full.
        ///
        /// # Errors
        /// `SendError(t)` when the receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut item = Some(t);
            if let Some((exec, me)) = runtime::current() {
                loop {
                    exec.schedule_point(me);
                    let mut st = model_lock(&self.0.st);
                    if !st.rx_alive {
                        return Err(SendError(item.take().expect("send item present")));
                    }
                    if st.cap.is_none_or(|c| st.q.len() < c) {
                        st.q.push_back(item.take().expect("send item present"));
                        let wake = std::mem::take(&mut st.recv_waiters);
                        drop(st);
                        self.0.wake(&exec, wake);
                        return Ok(());
                    }
                    st.send_waiters.push(me);
                    drop(st);
                    exec.block(me, "mpsc::SyncSender::send (queue full)");
                }
            }
            let mut st = model_lock(&self.0.st);
            loop {
                if !st.rx_alive {
                    return Err(SendError(item.take().expect("send item present")));
                }
                if st.cap.is_none_or(|c| st.q.len() < c) {
                    st.q.push_back(item.take().expect("send item present"));
                    drop(st);
                    self.0.cv.notify_all();
                    return Ok(());
                }
                st = self.0.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Enqueue `t` without blocking.
        ///
        /// # Errors
        /// `TrySendError::Full(t)` on a full queue, `Disconnected(t)` when
        /// the receiver is gone.
        pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
            let ctx = runtime::current();
            if let Some((exec, me)) = &ctx {
                exec.schedule_point(*me);
            }
            let wake = {
                let mut st = model_lock(&self.0.st);
                if !st.rx_alive {
                    return Err(TrySendError::Disconnected(t));
                }
                if st.cap.is_some_and(|c| st.q.len() >= c) {
                    return Err(TrySendError::Full(t));
                }
                st.q.push_back(t);
                std::mem::take(&mut st.recv_waiters)
            };
            if let Some((exec, _)) = &ctx {
                self.0.wake(exec, wake);
            }
            self.0.cv.notify_all();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, parking while the queue is empty and senders remain.
        ///
        /// # Errors
        /// `RecvError` once the queue is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            if let Some((exec, me)) = runtime::current() {
                loop {
                    exec.schedule_point(me);
                    let mut st = model_lock(&self.0.st);
                    if let Some(v) = st.q.pop_front() {
                        let wake = std::mem::take(&mut st.send_waiters);
                        drop(st);
                        self.0.wake(&exec, wake);
                        return Ok(v);
                    }
                    if st.senders == 0 {
                        return Err(RecvError);
                    }
                    st.recv_waiters.push(me);
                    drop(st);
                    exec.block(me, "mpsc::Receiver::recv (queue empty)");
                }
            }
            let mut st = model_lock(&self.0.st);
            loop {
                if let Some(v) = st.q.pop_front() {
                    drop(st);
                    self.0.cv.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Dequeue without blocking.
        ///
        /// # Errors
        /// `TryRecvError::Empty` on an empty queue with live senders,
        /// `Disconnected` once empty with every sender gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let ctx = runtime::current();
            if let Some((exec, me)) = &ctx {
                exec.schedule_point(*me);
            }
            let (v, wake) = {
                let mut st = model_lock(&self.0.st);
                match st.q.pop_front() {
                    Some(v) => (v, std::mem::take(&mut st.send_waiters)),
                    None if st.senders == 0 => return Err(TryRecvError::Disconnected),
                    None => return Err(TryRecvError::Empty),
                }
            };
            if let Some((exec, _)) = &ctx {
                self.0.wake(exec, wake);
            }
            self.0.cv.notify_all();
            Ok(v)
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Instrumented atomics: every access is a schedule point, so the checker
/// can interleave threads *between* an atomic read and the decision made on
/// it — the window torn-read/double-publish bugs live in. Values delegate
/// to the real `std` atomic with the caller's ordering.
pub mod atomic {
    use super::runtime;
    pub use std::sync::atomic::Ordering;

    fn point() {
        if let Some((exec, me)) = runtime::current() {
            exec.schedule_point(me);
        }
    }

    macro_rules! model_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// New atomic holding `v`.
                pub const fn new(v: $prim) -> Self {
                    Self { inner: <$std>::new(v) }
                }

                /// Load with `order` (a schedule point under the checker).
                pub fn load(&self, order: Ordering) -> $prim {
                    point();
                    self.inner.load(order)
                }

                /// Store with `order` (a schedule point under the checker).
                pub fn store(&self, v: $prim, order: Ordering) {
                    point();
                    self.inner.store(v, order);
                }

                /// Swap, returning the previous value.
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    point();
                    self.inner.swap(v, order)
                }

                /// Compare-exchange with `std` semantics.
                ///
                /// # Errors
                /// The actual value when it differed from `current`.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Fetch-update loop with `std` semantics.
                ///
                /// # Errors
                /// The current value when `f` returned `None`.
                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$prim, $prim>
                where
                    F: FnMut($prim) -> Option<$prim>,
                {
                    point();
                    self.inner.fetch_update(set_order, fetch_order, f)
                }
            }
        };
    }

    model_atomic!(
        /// Instrumented `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    model_atomic!(
        /// Instrumented `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    model_atomic!(
        /// Instrumented `AtomicBool`.
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );

    macro_rules! arith_ops {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Add, returning the previous value.
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    point();
                    self.inner.fetch_add(v, order)
                }

                /// Subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    point();
                    self.inner.fetch_sub(v, order)
                }

                /// Maximum, returning the previous value.
                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    point();
                    self.inner.fetch_max(v, order)
                }
            }
        };
    }

    arith_ops!(AtomicU64, u64);
    arith_ops!(AtomicUsize, usize);
}
