//! Deterministic pseudo-randomness for schedule exploration.
//!
//! The same splitmix64 the shard router uses: tiny, dependency-free, and —
//! the property the checker rests on — a pure function of the seed, so
//! `seed → schedule` is reproducible across runs, machines, and CI.

/// Splitmix64 generator. Each call advances the state by the golden-ratio
/// increment and returns a fully mixed 64-bit value.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        // The modulo bias at 64 bits over schedule fan-outs (< dozens of
        // runnable threads) is ~2^-59: irrelevant for exploration.
        (self.next_u64() % bound as u64) as usize
    }
}

/// Finalizing mix of splitmix64 — also used standalone to hash schedule
/// traces (fold of per-step choices).
pub fn mix(v: u64) -> u64 {
    let mut z = v;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash a schedule trace (sequence of chosen thread ids) to one `u64` so
/// distinct interleavings can be counted and compared cheaply.
pub fn hash_trace(trace: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in trace {
        h = mix(h ^ u64::from(c).wrapping_add(0x9e37_79b9_7f4a_7c15));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> =
            (0..8).map(|_| 0).scan(SplitMix64::new(7), |r, _| Some(r.next_u64())).collect();
        let b: Vec<u64> =
            (0..8).map(|_| 0).scan(SplitMix64::new(7), |r, _| Some(r.next_u64())).collect();
        assert_eq!(a, b);
        let c: Vec<u64> =
            (0..8).map(|_| 0).scan(SplitMix64::new(8), |r, _| Some(r.next_u64())).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn trace_hash_distinguishes_orders() {
        assert_ne!(hash_trace(&[0, 1, 0]), hash_trace(&[1, 0, 0]));
        assert_ne!(hash_trace(&[0]), hash_trace(&[0, 0]));
        assert_eq!(hash_trace(&[2, 2, 1]), hash_trace(&[2, 2, 1]));
    }
}
