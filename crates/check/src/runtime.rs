//! The deterministic scheduler: one model thread runs at a time, and every
//! instrumented operation (lock, channel, atomic, spawn/join) is a *schedule
//! point* where control returns to a controller that picks the next thread.
//!
//! Model threads are real OS threads gated by a condvar handshake: a thread
//! only executes between two schedule points while the controller has marked
//! it *active*, so the interleaving of instrumented operations is exactly
//! the controller's choice sequence — reproducible from the seed alone.
//!
//! Two exploration strategies:
//!
//! * [`Strategy::Random`] — at each schedule point pick uniformly among
//!   runnable threads, with a per-schedule RNG derived from
//!   `seed + schedule_index`. Cheap, embarrassingly parallel over seeds,
//!   and in practice the fastest way to hit ordering bugs.
//! * [`Strategy::Dfs`] — systematic depth-first enumeration of schedules
//!   with a *bounded number of preemptions* (a thread is only switched away
//!   from while runnable at most `max_preemptions` times per schedule) —
//!   the CHESS result that most concurrency bugs need very few preemptions.
//!
//! Detected failures:
//!
//! * **panic** — any model thread panicking (assertion failures in
//!   scenarios, poisoned invariants) fails the schedule with its message;
//! * **deadlock** — every unfinished thread blocked (covers lock cycles
//!   *and* lost wakeups: a `Condvar` waiter whose notify was consumed or
//!   never sent is just a permanently blocked thread);
//! * **livelock** — a schedule exceeding `max_steps` schedule points.
//!
//! On failure the report carries the exact choice trace so the interleaving
//! can be replayed by re-running the same seed.

use crate::rng::{hash_trace, SplitMix64};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};

/// Panic payload used to unwind model threads when a schedule is aborted
/// (failure elsewhere); never reported as a failure itself.
pub(crate) const ABORT_PAYLOAD: &str = "ann-check: schedule aborted";

/// How the controller explores the schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Seeded uniform-random choice at every schedule point.
    Random,
    /// Bounded-preemption depth-first enumeration.
    Dfs,
}

/// Checker configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Schedules to run (an upper bound under [`Strategy::Dfs`], which may
    /// exhaust the bounded-preemption space earlier).
    pub schedules: usize,
    /// Base seed; schedule `i` runs with `seed + i`.
    pub seed: u64,
    /// Preemption bound for [`Strategy::Dfs`].
    pub max_preemptions: usize,
    /// Schedule points allowed per schedule before declaring a livelock.
    pub max_steps: usize,
    /// Exploration strategy.
    pub strategy: Strategy,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            schedules: 1024,
            seed: 0x5eed_ab1e,
            max_preemptions: 2,
            max_steps: 50_000,
            strategy: Strategy::Random,
        }
    }
}

impl Config {
    /// Random exploration of `schedules` schedules from `seed`.
    pub fn random(schedules: usize, seed: u64) -> Self {
        Config { schedules, seed, strategy: Strategy::Random, ..Config::default() }
    }

    /// Bounded-preemption DFS with at most `schedules` schedules.
    pub fn dfs(schedules: usize, max_preemptions: usize) -> Self {
        Config { schedules, max_preemptions, strategy: Strategy::Dfs, ..Config::default() }
    }

    /// Apply `ANN_CHECK_SCHEDULES` / `ANN_CHECK_SEED` environment overrides
    /// (the CI budget knobs), leaving other fields untouched.
    pub fn with_env_overrides(mut self) -> Self {
        if let Some(n) = env_u64("ANN_CHECK_SCHEDULES") {
            self.schedules = n as usize;
        }
        if let Some(s) = env_u64("ANN_CHECK_SEED") {
            self.seed = s;
        }
        self
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
}

/// What ended a failing schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (scenario assertion, poisoned invariant).
    Panic,
    /// Every unfinished thread was blocked — lock cycle or lost wakeup.
    Deadlock,
    /// The schedule exceeded [`Config::max_steps`] schedule points.
    Livelock,
}

/// A failing schedule, with enough context to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable description (panic message, blocked-thread table).
    pub message: String,
    /// The choice trace: thread id chosen at each schedule point.
    pub trace: Vec<u32>,
    /// Index of the failing schedule (its seed is `report seed + index`).
    pub schedule: usize,
    /// The exact seed the failing schedule ran under.
    pub seed: u64,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} in schedule {} (seed {:#x}, {} steps): {}",
            self.kind,
            self.schedule,
            self.seed,
            self.trace.len(),
            self.message
        )
    }
}

/// Outcome of a [`check`] run.
#[derive(Debug)]
pub struct Report {
    /// Schedules executed (≤ configured budget if a failure stopped the run
    /// or DFS exhausted the space).
    pub schedules_run: usize,
    /// Number of *distinct* interleavings among them (by choice-trace hash).
    pub distinct_schedules: usize,
    /// Fold of every schedule's trace hash, in order — two runs of the same
    /// configuration are equal iff they explored identical interleavings.
    pub digest: u64,
    /// First failing schedule, if any (exploration stops at the first).
    pub failure: Option<Failure>,
}

impl Report {
    /// Whether every explored schedule passed.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }

    /// Panic with the failure rendered, if any. For use in tests.
    ///
    /// # Panics
    /// When a schedule failed.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!("ann-check failure after {} schedules: {f}", self.schedules_run);
        }
    }
}

/// Run state of one model thread.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Run {
    Runnable,
    /// Parked until another thread unblocks it; the string names what it
    /// waits on, for deadlock reports.
    Blocked(String),
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    run: Run,
    /// Threads blocked in `join` on this one.
    joiners: Vec<usize>,
}

#[derive(Debug, Default)]
struct ExecState {
    threads: Vec<ThreadState>,
    /// The one thread allowed to execute; `None` returns control to the
    /// controller.
    active: Option<usize>,
    /// Set on failure: every parked thread unwinds instead of resuming.
    abort: bool,
    failure: Option<(FailureKind, String)>,
}

/// One schedule's shared machinery: the controller and every model thread
/// hold an `Arc` to this.
pub(crate) struct Execution {
    st: Mutex<ExecState>,
    cv: Condvar,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CONTEXT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The calling OS thread's model context, if it is a model thread of a
/// live execution.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

fn lock_state(ex: &Execution) -> std::sync::MutexGuard<'_, ExecState> {
    // A model thread can only panic while *active*, i.e. outside this lock,
    // so poisoning here is unreachable; recover defensively anyway.
    ex.st.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Execution {
    fn new() -> Arc<Execution> {
        Arc::new(Execution {
            st: Mutex::new(ExecState::default()),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        })
    }

    /// Register a new model thread (runnable, not yet scheduled).
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = lock_state(self);
        st.threads.push(ThreadState { run: Run::Runnable, joiners: Vec::new() });
        st.threads.len() - 1
    }

    /// Launch the OS thread backing model thread `tid`. The closure runs
    /// only between schedule grants.
    pub(crate) fn launch(self: &Arc<Self>, tid: usize, body: impl FnOnce() + Send + 'static) {
        let exec = Arc::clone(self);
        let handle = std::thread::spawn(move || {
            CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
            // The first turn-wait sits inside catch_unwind too: an abort
            // arriving before this thread ever ran unwinds it cleanly.
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                exec.wait_for_turn(tid);
                body();
            }));
            let mut st = lock_state(&exec);
            if let Err(payload) = result {
                let msg = payload_message(payload.as_ref());
                if msg != ABORT_PAYLOAD && st.failure.is_none() {
                    st.failure =
                        Some((FailureKind::Panic, format!("thread {tid} panicked: {msg}")));
                }
            }
            st.threads[tid].run = Run::Finished;
            let joiners = std::mem::take(&mut st.threads[tid].joiners);
            for j in joiners {
                if let Run::Blocked(_) = st.threads[j].run {
                    st.threads[j].run = Run::Runnable;
                }
            }
            st.active = None;
            drop(st);
            exec.cv.notify_all();
        });
        self.os_handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(handle);
    }

    /// Park until the controller grants this thread the turn (or aborts).
    fn wait_for_turn(&self, tid: usize) {
        let mut st = lock_state(self);
        while st.active != Some(tid) && !st.abort {
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if st.abort {
            drop(st);
            std::panic::panic_any(ABORT_PAYLOAD);
        }
    }

    /// A schedule point: hand control back and park until rescheduled.
    pub(crate) fn schedule_point(&self, tid: usize) {
        {
            let mut st = lock_state(self);
            st.active = None;
        }
        self.cv.notify_all();
        self.wait_for_turn(tid);
    }

    /// Block the calling model thread on `why` and hand control back; the
    /// call returns once some other thread unblocked it *and* the
    /// controller scheduled it again.
    pub(crate) fn block(&self, tid: usize, why: &str) {
        {
            let mut st = lock_state(self);
            st.threads[tid].run = Run::Blocked(why.to_string());
            st.active = None;
        }
        self.cv.notify_all();
        self.wait_for_turn(tid);
    }

    /// Make a blocked thread runnable again (no effect on finished or
    /// already-runnable threads). Called by the thread holding the turn.
    pub(crate) fn unblock(&self, tid: usize) {
        let mut st = lock_state(self);
        if let Run::Blocked(_) = st.threads[tid].run {
            st.threads[tid].run = Run::Runnable;
        }
    }

    /// Record `tid` as waiting for `target` to finish; returns `true` if
    /// the caller must block (target unfinished).
    pub(crate) fn join_requires_block(&self, tid: usize, target: usize) -> bool {
        let mut st = lock_state(self);
        if st.threads[target].run == Run::Finished {
            return false;
        }
        st.threads[target].joiners.push(tid);
        true
    }

    /// Whether `target` has finished.
    pub(crate) fn is_finished(&self, target: usize) -> bool {
        lock_state(self).threads[target].run == Run::Finished
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One step's scheduling decision input: runnable thread ids (sorted) and
/// the previously active thread, if still runnable.
trait Decider {
    fn choose(&mut self, runnable: &[usize], prev: Option<usize>) -> usize;
    /// Called after a schedule completes; returns `false` when the search
    /// space is exhausted.
    fn advance(&mut self) -> bool;
}

struct RandomDecider {
    rng: SplitMix64,
}

impl Decider for RandomDecider {
    fn choose(&mut self, runnable: &[usize], _prev: Option<usize>) -> usize {
        runnable[self.rng.next_below(runnable.len())]
    }

    fn advance(&mut self) -> bool {
        true // re-seeded per schedule by the driver
    }
}

/// One decision point in the DFS tree.
struct DfsNode {
    /// Runnable set at this point, in exploration order (non-preempting
    /// choice first so the 0-preemption schedule is explored first).
    choices: Vec<usize>,
    /// Index into `choices` currently being explored.
    cursor: usize,
}

struct DfsDecider {
    path: Vec<DfsNode>,
    /// Current replay/extend position within `path`.
    depth: usize,
    preemptions: usize,
    max_preemptions: usize,
    exhausted: bool,
}

impl DfsDecider {
    fn new(max_preemptions: usize) -> Self {
        DfsDecider { path: Vec::new(), depth: 0, preemptions: 0, max_preemptions, exhausted: false }
    }
}

impl Decider for DfsDecider {
    fn choose(&mut self, runnable: &[usize], prev: Option<usize>) -> usize {
        if self.depth == self.path.len() {
            // Extend: order choices non-preempting-first, and if the
            // preemption budget is spent, keep only the running thread.
            let mut choices: Vec<usize> = Vec::with_capacity(runnable.len());
            if let Some(p) = prev {
                if runnable.contains(&p) {
                    choices.push(p);
                }
            }
            for &t in runnable {
                if Some(t) != prev {
                    choices.push(t);
                }
            }
            let continuing = prev.is_some() && runnable.contains(&prev.unwrap_or(usize::MAX));
            if continuing && self.preemptions >= self.max_preemptions {
                choices.truncate(1);
            }
            self.path.push(DfsNode { choices, cursor: 0 });
        }
        let node = &self.path[self.depth];
        let chosen = node.choices[node.cursor.min(node.choices.len() - 1)];
        self.depth += 1;
        if let Some(p) = prev {
            if chosen != p && runnable.contains(&p) {
                self.preemptions += 1;
            }
        }
        chosen
    }

    fn advance(&mut self) -> bool {
        // Backtrack to the deepest node with an untried sibling.
        while let Some(node) = self.path.last_mut() {
            if node.cursor + 1 < node.choices.len() {
                node.cursor += 1;
                self.depth = 0;
                self.preemptions = 0;
                return true;
            }
            self.path.pop();
        }
        self.exhausted = true;
        false
    }
}

/// Model-check `body`: run it under up to [`Config::schedules`] distinct
/// schedules, one fresh execution per schedule, stopping at the first
/// failure.
///
/// `body` is the scenario: it runs as model thread 0 and spawns further
/// model threads with [`crate::thread::spawn`]; all instrumented sync
/// operations inside become schedule points. State must be created inside
/// `body` so every schedule starts fresh.
pub fn check<F>(config: &Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let body = Arc::new(body);
    let mut distinct = BTreeSet::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut random = RandomDecider { rng: SplitMix64::new(config.seed) };
    let mut dfs = DfsDecider::new(config.max_preemptions);
    let mut schedules_run = 0usize;
    let mut failure = None;

    for i in 0..config.schedules {
        let seed = config.seed.wrapping_add(i as u64);
        let decider: &mut dyn Decider = match config.strategy {
            Strategy::Random => {
                random.rng = SplitMix64::new(seed);
                &mut random
            }
            Strategy::Dfs => {
                if dfs.exhausted {
                    break;
                }
                &mut dfs
            }
        };
        let b = Arc::clone(&body);
        let (trace, outcome) = run_schedule(decider, config.max_steps, move || b());
        schedules_run += 1;
        let h = hash_trace(&trace);
        distinct.insert(h);
        digest = crate::rng::mix(digest ^ h);
        if let Some((kind, message)) = outcome {
            failure = Some(Failure { kind, message, trace, schedule: i, seed });
            break;
        }
        if config.strategy == Strategy::Dfs && !dfs.advance() {
            break;
        }
    }

    Report { schedules_run, distinct_schedules: distinct.len(), digest, failure }
}

/// Silence the default panic hook on model threads: their panics (scenario
/// assertions, schedule aborts) are captured by `catch_unwind` and reported
/// through [`Report::failure`], so stderr spam would only obscure the real
/// diagnosis. Panics on non-model threads keep the previous hook behavior.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if current().is_none() {
                prev(info);
            }
        }));
    });
}

/// Run one schedule to completion; returns the choice trace and the
/// failure, if any.
fn run_schedule(
    decider: &mut dyn Decider,
    max_steps: usize,
    body: impl FnOnce() + Send + 'static,
) -> (Vec<u32>, Option<(FailureKind, String)>) {
    let exec = Execution::new();
    let root = exec.register_thread();
    exec.launch(root, body);

    let mut trace: Vec<u32> = Vec::new();
    let mut prev: Option<usize> = None;
    let outcome = loop {
        let mut st = lock_state(&exec);
        while st.active.is_some() {
            st = exec.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if let Some(f) = st.failure.take() {
            break Some(f);
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.run == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| t.run == Run::Finished) {
                break None;
            }
            let table: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match &t.run {
                    Run::Blocked(why) => Some(format!("thread {i} blocked on {why}")),
                    _ => None,
                })
                .collect();
            break Some((
                FailureKind::Deadlock,
                format!("no runnable thread; {}", table.join("; ")),
            ));
        }
        if trace.len() >= max_steps {
            break Some((
                FailureKind::Livelock,
                format!("schedule exceeded {max_steps} steps without finishing"),
            ));
        }
        let prev_runnable = prev.filter(|p| runnable.contains(p));
        let chosen = decider.choose(&runnable, prev_runnable);
        debug_assert!(runnable.contains(&chosen));
        trace.push(chosen as u32);
        prev = Some(chosen);
        st.active = Some(chosen);
        drop(st);
        exec.cv.notify_all();
    };

    // Abort stragglers (on failure) and reap every OS thread.
    {
        let mut st = lock_state(&exec);
        st.abort = true;
        st.active = None;
    }
    exec.cv.notify_all();
    let handles = std::mem::take(
        &mut *exec.os_handles.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    for h in handles {
        let _ = h.join();
    }
    (trace, outcome)
}
