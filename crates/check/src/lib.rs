//! `ann-check` — a hand-rolled, dependency-free deterministic concurrency
//! checker in the loom/shuttle family, sized for this repo's serving stack.
//!
//! # How it works
//!
//! [`check`] runs a closure many times. Each run spawns the closure's
//! threads as real OS threads, but gates them on a condvar handshake so
//! **exactly one** runs between *schedule points* (every instrumented lock,
//! channel, atomic, or thread operation in [`sync`] / [`thread`]). A
//! controller picks which runnable thread advances at each point — either
//! seeded-random ([`Strategy::Random`]) or bounded-preemption DFS
//! ([`Strategy::Dfs`], CHESS-style) — so the interleaving is a pure
//! function of the seed: same seed, same schedule, on any machine.
//!
//! Detected failures:
//! - **panics** in any model thread (assertion failures in scenarios),
//! - **deadlocks** — every unfinished thread blocked; this also catches
//!   lost wakeups, which surface as a waiter nobody will ever notify,
//! - **livelocks** — a schedule exceeding the step budget.
//!
//! The first failing schedule is reported with its full trace (the exact
//! sequence of thread choices), its index, and the seed to replay it.
//!
//! # Usage
//!
//! ```
//! use ann_check::{check, Config};
//! use ann_check::sync::Mutex;
//! use std::sync::Arc;
//!
//! let report = check(&Config::random(64, 7), || {
//!     let n = Arc::new(Mutex::new(0u32));
//!     let n2 = Arc::clone(&n);
//!     let t = ann_check::thread::spawn(move || {
//!         *n2.lock().unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
//!     });
//!     *n.lock().unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
//!     t.join().unwrap();
//!     assert_eq!(*n.lock().unwrap_or_else(std::sync::PoisonError::into_inner), 2);
//! });
//! report.assert_ok();
//! ```
//!
//! Production code never imports this crate directly: `ann-service` routes
//! through its `sync` facade, which re-exports `std::sync` normally and
//! these instrumented primitives under `--cfg ann_check`.

pub mod rng;
pub mod runtime;
pub mod scenarios;
pub mod sync;
pub mod thread;

pub use runtime::{check, Config, Failure, FailureKind, Report, Strategy};
