//! Merge correctness for sharded serving: for any corpus split across
//! 1..=4 shards by the production router, the k-way merge of exhaustive
//! per-shard top-k lists must equal the unsharded exhaustive top-k —
//! exactly, ids and distances, including ties (broken by external id).
//!
//! This is the property that makes fan-out/merge *semantics-preserving*:
//! sharding may only change which beam explores a point, never what the
//! assembled answer is when every shard answers exactly.

use ann_suite::ann_service::merge_topk;
use ann_suite::ann_vectors::route::shard_of;
use ann_suite::ann_vectors::Metric;
use proptest::prelude::*;

/// Exhaustive top-k over `points`, ordered by `(distance, external id)` —
/// the same total order the service's merge uses.
fn exhaustive_topk(
    metric: Metric,
    points: &[(u64, Vec<f32>)],
    query: &[f32],
    k: usize,
) -> (Vec<u64>, Vec<f32>) {
    let mut scored: Vec<(f32, u64)> =
        points.iter().map(|(ext, v)| (metric.distance(query, v), *ext)).collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    (scored.iter().map(|s| s.1).collect(), scored.iter().map(|s| s.0).collect())
}

/// Deterministic corpus with plenty of exact duplicates (quantized
/// coordinates), so distance ties are common and the id tie-break is
/// actually exercised.
fn corpus(n: usize, dim: usize, levels: u32, seed: u64) -> Vec<(u64, Vec<f32>)> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n as u64)
        .map(|ext| {
            // Sparse external ids: shard routing must not depend on density.
            let id = ext * 7 + (ext % 3) * 1000;
            let v = (0..dim).map(|_| (next() % u64::from(levels)) as f32).collect();
            (id, v)
        })
        .collect()
}

fn check_split(points: &[(u64, Vec<f32>)], query: &[f32], k: usize, shards: usize) {
    let (want_ids, want_dists) = exhaustive_topk(Metric::L2, points, query, k);

    // Route every point with the production placement function, answer
    // each shard exhaustively, then merge.
    let mut per_shard: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); shards];
    for (ext, v) in points {
        per_shard[shard_of(*ext, shards)].push((*ext, v.clone()));
    }
    let mut ids = Vec::with_capacity(shards);
    let mut dists = Vec::with_capacity(shards);
    for shard in &per_shard {
        let (i, d) = exhaustive_topk(Metric::L2, shard, query, k);
        ids.push(i);
        dists.push(d);
    }
    let (got_ids, got_dists) = merge_topk(&ids, &dists, k);

    assert_eq!(
        got_ids, want_ids,
        "sharded merge diverged from unsharded top-{k} ({shards} shards)"
    );
    assert_eq!(
        got_dists, want_dists,
        "merged distances must be bitwise equal to the unsharded ones"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn merged_shard_topk_equals_unsharded_topk(
        n in 1usize..120,
        k in 1usize..14,
        shards in 1usize..5,
        levels in 2u32..5,
        seed in 0u64..10_000,
    ) {
        let points = corpus(n, 6, levels, seed);
        let query: Vec<f32> = corpus(1, 6, levels, seed ^ 0xABCD)[0].1.clone();
        check_split(&points, &query, k, shards);
    }
}

/// Tombstone-filter property over the *production* search path: build a
/// real sharded set, delete a pseudo-random third of the corpus, publish
/// the deletes **incrementally** (tombstones ride the live snapshots'
/// deletion filters — no compaction), and the fan-out/k-way-merge must
/// never surface a tombstoned external id, return duplicates, or come up
/// short while live points remain (the beam-budget compensation at work).
/// Quantized coordinates make exact duplicates — and therefore distance
/// ties against the tombstoned points themselves — common; `shards` spans
/// the degenerate N=1 case.
fn check_tombstone_filter(n: usize, levels: u32, seed: u64, shards: usize, k: usize) {
    use ann_suite::ann_graph::Scratch;
    use ann_suite::ann_service::{split_index, Fanout, Metrics, ShardSetWriter};
    use ann_suite::ann_vectors::VecStore;
    use ann_suite::tau_mg::{build_tau_mng, TauMngParams};
    use std::sync::Arc;

    const PARAMS: TauMngParams = TauMngParams { tau: 0.15, r: 16, l: 48, c: 150 };
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..6).map(|_| (next() % u64::from(levels)) as f32).collect())
        .collect();
    let store = Arc::new(VecStore::from_rows(&rows).unwrap());
    let knn = ann_suite::ann_knng::brute_force_knn_graph(Metric::L2, &store, 8).unwrap();
    let index = build_tau_mng(store, Metric::L2, &knn, PARAMS).unwrap();
    let parts = split_index(index, PARAMS, shards).unwrap();
    let (mut writer, set) =
        ShardSetWriter::attach(parts, PARAMS, Arc::new(Metrics::new())).unwrap();

    let mut deleted = std::collections::BTreeSet::new();
    while deleted.len() < n / 3 {
        deleted.insert(next() % n as u64);
    }
    for &d in &deleted {
        writer.delete(d).unwrap();
    }
    writer.publish_tombstones().unwrap();
    let live = n - deleted.len();

    let mut snaps = Vec::new();
    set.load_into(&mut snaps);
    let mut fanout = Fanout::new(shards);
    let mut scratch = Scratch::new(n);
    // Probe with tombstoned points' own vectors (distance-zero ties against
    // the filtered ids) plus one off-grid query.
    let mut queries: Vec<Vec<f32>> =
        deleted.iter().take(4).map(|&d| rows[d as usize].clone()).collect();
    queries.push((0..6).map(|_| (next() % u64::from(levels)) as f32 + 0.25).collect());
    for q in &queries {
        let hit = fanout.search(&snaps, q, k, 96, &mut scratch, None);
        assert_eq!(hit.ids.len(), k.min(live), "short merged answer despite {live} live points");
        let mut seen = std::collections::HashSet::new();
        for id in &hit.ids {
            assert!(!deleted.contains(id), "tombstoned id {id} in merged answer");
            assert!(seen.insert(*id), "duplicate id {id} in merged answer");
        }
        assert!(hit.dists.windows(2).all(|w| w[0] <= w[1]), "merged distances out of order");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn fanout_merge_never_returns_tombstoned_ids(
        n in 24usize..90,
        levels in 2u32..4,
        seed in 0u64..10_000,
        shards in 1usize..5,
        k in 1usize..12,
    ) {
        check_tombstone_filter(n, levels, seed, shards, k);
    }
}

#[test]
fn merge_handles_every_shard_count_on_one_corpus() {
    // One deterministic corpus through all supported splits, k beyond the
    // corpus size included (short answers must merge short, not pad).
    let points = corpus(40, 4, 3, 99);
    let query = vec![1.0, 0.0, 2.0, 1.0];
    for shards in 1..=4 {
        for k in [1, 3, 40, 64] {
            check_split(&points, &query, k, shards);
        }
    }
}
