//! Merge correctness for sharded serving: for any corpus split across
//! 1..=4 shards by the production router, the k-way merge of exhaustive
//! per-shard top-k lists must equal the unsharded exhaustive top-k —
//! exactly, ids and distances, including ties (broken by external id).
//!
//! This is the property that makes fan-out/merge *semantics-preserving*:
//! sharding may only change which beam explores a point, never what the
//! assembled answer is when every shard answers exactly.

use ann_suite::ann_service::merge_topk;
use ann_suite::ann_vectors::route::shard_of;
use ann_suite::ann_vectors::Metric;
use proptest::prelude::*;

/// Exhaustive top-k over `points`, ordered by `(distance, external id)` —
/// the same total order the service's merge uses.
fn exhaustive_topk(
    metric: Metric,
    points: &[(u64, Vec<f32>)],
    query: &[f32],
    k: usize,
) -> (Vec<u64>, Vec<f32>) {
    let mut scored: Vec<(f32, u64)> =
        points.iter().map(|(ext, v)| (metric.distance(query, v), *ext)).collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    (scored.iter().map(|s| s.1).collect(), scored.iter().map(|s| s.0).collect())
}

/// Deterministic corpus with plenty of exact duplicates (quantized
/// coordinates), so distance ties are common and the id tie-break is
/// actually exercised.
fn corpus(n: usize, dim: usize, levels: u32, seed: u64) -> Vec<(u64, Vec<f32>)> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n as u64)
        .map(|ext| {
            // Sparse external ids: shard routing must not depend on density.
            let id = ext * 7 + (ext % 3) * 1000;
            let v = (0..dim).map(|_| (next() % u64::from(levels)) as f32).collect();
            (id, v)
        })
        .collect()
}

fn check_split(points: &[(u64, Vec<f32>)], query: &[f32], k: usize, shards: usize) {
    let (want_ids, want_dists) = exhaustive_topk(Metric::L2, points, query, k);

    // Route every point with the production placement function, answer
    // each shard exhaustively, then merge.
    let mut per_shard: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); shards];
    for (ext, v) in points {
        per_shard[shard_of(*ext, shards)].push((*ext, v.clone()));
    }
    let mut ids = Vec::with_capacity(shards);
    let mut dists = Vec::with_capacity(shards);
    for shard in &per_shard {
        let (i, d) = exhaustive_topk(Metric::L2, shard, query, k);
        ids.push(i);
        dists.push(d);
    }
    let (got_ids, got_dists) = merge_topk(&ids, &dists, k);

    assert_eq!(
        got_ids, want_ids,
        "sharded merge diverged from unsharded top-{k} ({shards} shards)"
    );
    assert_eq!(
        got_dists, want_dists,
        "merged distances must be bitwise equal to the unsharded ones"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn merged_shard_topk_equals_unsharded_topk(
        n in 1usize..120,
        k in 1usize..14,
        shards in 1usize..5,
        levels in 2u32..5,
        seed in 0u64..10_000,
    ) {
        let points = corpus(n, 6, levels, seed);
        let query: Vec<f32> = corpus(1, 6, levels, seed ^ 0xABCD)[0].1.clone();
        check_split(&points, &query, k, shards);
    }
}

/// Tombstone-filter property over the *production* search path: build a
/// real sharded set, delete a pseudo-random third of the corpus, publish
/// the deletes **incrementally** (tombstones ride the live snapshots'
/// deletion filters — no compaction), and the fan-out/k-way-merge must
/// never surface a tombstoned external id, return duplicates, or come up
/// short while live points remain (the beam-budget compensation at work).
/// Quantized coordinates make exact duplicates — and therefore distance
/// ties against the tombstoned points themselves — common; `shards` spans
/// the degenerate N=1 case.
fn check_tombstone_filter(n: usize, levels: u32, seed: u64, shards: usize, k: usize) {
    use ann_suite::ann_graph::Scratch;
    use ann_suite::ann_service::{split_index, Fanout, Metrics, ShardSetWriter};
    use ann_suite::ann_vectors::VecStore;
    use ann_suite::tau_mg::{build_tau_mng, TauMngParams};
    use std::sync::Arc;

    const PARAMS: TauMngParams = TauMngParams { tau: 0.15, r: 16, l: 48, c: 150 };
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..6).map(|_| (next() % u64::from(levels)) as f32).collect())
        .collect();
    let store = Arc::new(VecStore::from_rows(&rows).unwrap());
    let knn = ann_suite::ann_knng::brute_force_knn_graph(Metric::L2, &store, 8).unwrap();
    let index = build_tau_mng(store, Metric::L2, &knn, PARAMS).unwrap();
    let parts = split_index(index, PARAMS, shards).unwrap();
    let (mut writer, set) =
        ShardSetWriter::attach(parts, PARAMS, Arc::new(Metrics::new())).unwrap();

    let mut deleted = std::collections::BTreeSet::new();
    while deleted.len() < n / 3 {
        deleted.insert(next() % n as u64);
    }
    for &d in &deleted {
        writer.delete(d).unwrap();
    }
    writer.publish_tombstones().unwrap();
    let live = n - deleted.len();

    let mut snaps = Vec::new();
    set.load_into(&mut snaps);
    let mut fanout = Fanout::new(shards);
    let mut scratch = Scratch::new(n);
    // Probe with tombstoned points' own vectors (distance-zero ties against
    // the filtered ids) plus one off-grid query.
    let mut queries: Vec<Vec<f32>> =
        deleted.iter().take(4).map(|&d| rows[d as usize].clone()).collect();
    queries.push((0..6).map(|_| (next() % u64::from(levels)) as f32 + 0.25).collect());
    for q in &queries {
        let hit = fanout.search(&snaps, q, k, 96, &mut scratch, None);
        assert_eq!(hit.ids.len(), k.min(live), "short merged answer despite {live} live points");
        let mut seen = std::collections::HashSet::new();
        for id in &hit.ids {
            assert!(!deleted.contains(id), "tombstoned id {id} in merged answer");
            assert!(seen.insert(*id), "duplicate id {id} in merged answer");
        }
        assert!(hit.dists.windows(2).all(|w| w[0] <= w[1]), "merged distances out of order");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn fanout_merge_never_returns_tombstoned_ids(
        n in 24usize..90,
        levels in 2u32..4,
        seed in 0u64..10_000,
        shards in 1usize..5,
        k in 1usize..12,
    ) {
        check_tombstone_filter(n, levels, seed, shards, k);
    }
}

/// Attribute-filter property over the production durable path: build a
/// real sharded set with per-shard write-ahead logs under each of the
/// three durability modes, attach attributes to half the corpus, delete a
/// pseudo-random sixth, and the filtered fan-out/k-way-merge must never
/// surface a non-matching or tombstoned external id — ties (quantized
/// coordinates, duplicate vectors) included. The no-filter submission must
/// stay bitwise identical to the plain search path.
fn check_attribute_filter(
    n: usize,
    levels: u32,
    seed: u64,
    shards: usize,
    k: usize,
    durability: ann_suite::ann_service::DurabilityMode,
) {
    use ann_suite::ann_graph::Scratch;
    use ann_suite::ann_service::{
        split_index, AttrValue, Fanout, FilterExpr, Metrics, RealFs, ShardSetWriter,
        SnapshotStoreConfig,
    };
    use ann_suite::ann_vectors::VecStore;
    use ann_suite::tau_mg::{build_tau_mng, TauMngParams};
    use std::sync::Arc;

    const PARAMS: TauMngParams = TauMngParams { tau: 0.15, r: 16, l: 48, c: 150 };
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..6).map(|_| (next() % u64::from(levels)) as f32).collect())
        .collect();
    let store = Arc::new(VecStore::from_rows(&rows).unwrap());
    let knn = ann_suite::ann_knng::brute_force_knn_graph(Metric::L2, &store, 8).unwrap();
    let index = build_tau_mng(store, Metric::L2, &knn, PARAMS).unwrap();
    let parts = split_index(index, PARAMS, shards).unwrap();
    let root = std::env::temp_dir()
        .join(format!("ann-filter-prop-{}-{seed}-{shards}-{durability:?}", std::process::id()));
    let config = SnapshotStoreConfig {
        durability,
        backoff: std::time::Duration::ZERO,
        ..SnapshotStoreConfig::default()
    };
    let (mut writer, set) = ShardSetWriter::attach_durable_with_fs(
        parts,
        PARAMS,
        Arc::new(Metrics::new()),
        &root,
        Arc::new(RealFs),
        config,
    )
    .unwrap();

    // Attributes on even ids: band = id % 3 (journaled as WAL attribute
    // records under the chosen durability mode).
    for ext in (0..n as u64).filter(|e| e % 2 == 0) {
        writer.set_attrs(ext, vec![("band".into(), AttrValue::U64(ext % 3))]).unwrap();
    }
    let mut deleted = std::collections::BTreeSet::new();
    while deleted.len() < n / 6 {
        deleted.insert(next() % n as u64);
    }
    for &d in &deleted {
        writer.delete(d).unwrap();
    }
    // Odd seeds compact fully; even seeds publish tombstones incrementally
    // (attribute updates must be visible on both publication paths).
    if seed % 2 == 1 {
        writer.publish().unwrap();
    } else {
        writer.publish_tombstones().unwrap();
    }

    let mut snaps = Vec::new();
    set.load_into(&mut snaps);
    let mut fanout = Fanout::new(shards);
    let mut scratch = Scratch::new(n);
    let expr = FilterExpr::eq("band", AttrValue::U64(0));
    let matches = |id: u64| id.is_multiple_of(2) && id.is_multiple_of(3) && !deleted.contains(&id);
    // Probe with deleted and matching points' own vectors (distance-zero
    // ties against filtered ids) plus one off-grid query.
    let mut queries: Vec<Vec<f32>> =
        deleted.iter().take(2).map(|&d| rows[d as usize].clone()).collect();
    if let Some(m) = (0..n as u64).find(|&e| matches(e)) {
        queries.push(rows[m as usize].clone());
    }
    queries.push((0..6).map(|_| (next() % u64::from(levels)) as f32 + 0.25).collect());
    for q in &queries {
        let hit = fanout.search_filtered(&snaps, q, k, 96, Some(&expr), &mut scratch, None);
        let mut seen = std::collections::HashSet::new();
        for id in &hit.ids {
            assert!(matches(*id), "non-matching or tombstoned id {id} in filtered answer");
            assert!(seen.insert(*id), "duplicate id {id} in filtered answer");
        }
        assert!(hit.dists.windows(2).all(|w| w[0] <= w[1]), "filtered distances out of order");

        // No filter: bitwise identical to the plain search path.
        let plain = fanout.search(&snaps, q, k, 96, &mut scratch, None);
        let unfiltered = fanout.search_filtered(&snaps, q, k, 96, None, &mut scratch, None);
        assert_eq!(unfiltered.ids, plain.ids, "no-filter path diverged from plain search");
        assert_eq!(unfiltered.dists, plain.dists);
    }
    drop(writer);
    let _ = std::fs::remove_dir_all(&root);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn filtered_fanout_never_returns_nonmatching_or_tombstoned_ids(
        n in 24usize..72,
        levels in 2u32..4,
        seed in 0u64..10_000,
        shards in 1usize..5,
        k in 1usize..12,
        mode in 0usize..3,
    ) {
        use ann_suite::ann_service::DurabilityMode;
        use std::time::Duration;
        let durability = [
            DurabilityMode::None,
            DurabilityMode::Batched { max_records: 4, max_delay: Duration::from_secs(3600) },
            DurabilityMode::Strict,
        ][mode];
        check_attribute_filter(n, levels, seed, shards, k, durability);
    }
}

/// Beam-budget compensation regression (skewed deletes): the old policy
/// widened by the *absolute* tombstone count (`slack = min(tombstones,
/// max(l, k))`, searched at `k + slack, l + slack`, then post-dropped
/// tombstones), so a corpus with many deletes in absolute terms — but a
/// small deleted *fraction* — paid a doubled beam for nothing. The
/// selectivity-based widening asks for `ceil(l / live_fraction)` instead:
/// equal recall, measurably fewer distance computations.
#[test]
fn skewed_delete_widening_keeps_recall_at_lower_ndc() {
    use ann_suite::ann_graph::Scratch;
    use ann_suite::ann_service::{IndexWriter, Metrics};
    use ann_suite::ann_vectors::VecStore;
    use ann_suite::tau_mg::{build_tau_mng, TauMngParams, TauSearchOptions};
    use std::sync::Arc;

    const PARAMS: TauMngParams = TauMngParams { tau: 0.15, r: 20, l: 64, c: 300 };
    let (n, dim, k, l) = (1500usize, 8usize, 10usize, 64usize);
    let mut state = 0xC0FFEE_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..dim).map(|_| (next() % 1000) as f32 / 1000.0).collect())
        .collect();
    let store = Arc::new(VecStore::from_rows(&rows).unwrap());
    let knn = ann_suite::ann_knng::brute_force_knn_graph(Metric::L2, &store, 10).unwrap();
    // Two deterministically identical builds: one serves the new path, one
    // emulates the retired additive-slack policy on the raw index.
    let index_new = build_tau_mng(Arc::clone(&store), Metric::L2, &knn, PARAMS).unwrap();
    let index_old = build_tau_mng(Arc::clone(&store), Metric::L2, &knn, PARAMS).unwrap();

    // Skewed deletes: one contiguous tenth of the id space (150 ids — large
    // in absolute count, so the old slack saturates at `l` and doubles the
    // beam; small as a fraction, so the new widening barely grows it).
    let deleted: std::collections::BTreeSet<u64> = (0..(n as u64) / 10).collect();
    let (mut writer, cell) = IndexWriter::attach(index_new, PARAMS, Arc::new(Metrics::new()));
    for &d in &deleted {
        writer.delete(d).unwrap();
    }
    writer.publish_tombstones().unwrap();
    let snap = cell.load();

    let queries: Vec<Vec<f32>> = (0..24)
        .map(|_| (0..dim).map(|_| (next() % 1000) as f32 / 1000.0).collect())
        .collect();
    let mut scratch = Scratch::new(n);
    let (mut hits_new, mut hits_old, mut ndc_new, mut ndc_old) = (0usize, 0usize, 0u64, 0u64);
    for q in &queries {
        // Exhaustive live ground truth.
        let mut truth: Vec<(f32, u64)> = rows
            .iter()
            .enumerate()
            .filter(|(i, _)| !deleted.contains(&(*i as u64)))
            .map(|(i, v)| (Metric::L2.distance(q, v), i as u64))
            .collect();
        truth.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let truth: std::collections::HashSet<u64> = truth[..k].iter().map(|t| t.1).collect();

        // New: selectivity-widened filter-during-search.
        let hit = snap.search(q, k, l, &mut scratch);
        ndc_new += hit.stats.ndc;
        hits_new += hit.ids.iter().filter(|id| truth.contains(id)).count();

        // Old: unfiltered search at `k + slack, l + slack`, post-dropped.
        let slack = deleted.len().min(l.max(k));
        let r = index_old.search_opts(
            q,
            k + slack,
            l.max(k) + slack,
            TauSearchOptions::default(),
            &mut scratch,
        );
        ndc_old += r.stats.ndc;
        let kept: Vec<u64> = r
            .ids
            .iter()
            .map(|&i| i as u64)
            .filter(|id| !deleted.contains(id))
            .take(k)
            .collect();
        hits_old += kept.iter().filter(|id| truth.contains(id)).count();
    }
    let recall_new = hits_new as f64 / (queries.len() * k) as f64;
    let recall_old = hits_old as f64 / (queries.len() * k) as f64;
    assert!(
        recall_new >= recall_old - 1e-9,
        "fraction-based widening lost recall: new {recall_new:.4} vs old {recall_old:.4}"
    );
    assert!(recall_new >= 0.9, "absolute recall floor: {recall_new:.4}");
    assert!(
        ndc_new < ndc_old,
        "fraction-based widening should cost fewer distance computations: \
         new {ndc_new} vs old {ndc_old} (recall {recall_new:.4} vs {recall_old:.4})"
    );
}

#[test]
fn merge_handles_every_shard_count_on_one_corpus() {
    // One deterministic corpus through all supported splits, k beyond the
    // corpus size included (short answers must merge short, not pad).
    let points = corpus(40, 4, 3, 99);
    let query = vec![1.0, 0.0, 2.0, 1.0];
    for shards in 1..=4 {
        for k in [1, 3, 40, 64] {
            check_split(&points, &query, k, shards);
        }
    }
}
