//! Merge correctness for sharded serving: for any corpus split across
//! 1..=4 shards by the production router, the k-way merge of exhaustive
//! per-shard top-k lists must equal the unsharded exhaustive top-k —
//! exactly, ids and distances, including ties (broken by external id).
//!
//! This is the property that makes fan-out/merge *semantics-preserving*:
//! sharding may only change which beam explores a point, never what the
//! assembled answer is when every shard answers exactly.

use ann_suite::ann_service::merge_topk;
use ann_suite::ann_vectors::route::shard_of;
use ann_suite::ann_vectors::Metric;
use proptest::prelude::*;

/// Exhaustive top-k over `points`, ordered by `(distance, external id)` —
/// the same total order the service's merge uses.
fn exhaustive_topk(
    metric: Metric,
    points: &[(u64, Vec<f32>)],
    query: &[f32],
    k: usize,
) -> (Vec<u64>, Vec<f32>) {
    let mut scored: Vec<(f32, u64)> =
        points.iter().map(|(ext, v)| (metric.distance(query, v), *ext)).collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    (scored.iter().map(|s| s.1).collect(), scored.iter().map(|s| s.0).collect())
}

/// Deterministic corpus with plenty of exact duplicates (quantized
/// coordinates), so distance ties are common and the id tie-break is
/// actually exercised.
fn corpus(n: usize, dim: usize, levels: u32, seed: u64) -> Vec<(u64, Vec<f32>)> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n as u64)
        .map(|ext| {
            // Sparse external ids: shard routing must not depend on density.
            let id = ext * 7 + (ext % 3) * 1000;
            let v = (0..dim).map(|_| (next() % u64::from(levels)) as f32).collect();
            (id, v)
        })
        .collect()
}

fn check_split(points: &[(u64, Vec<f32>)], query: &[f32], k: usize, shards: usize) {
    let (want_ids, want_dists) = exhaustive_topk(Metric::L2, points, query, k);

    // Route every point with the production placement function, answer
    // each shard exhaustively, then merge.
    let mut per_shard: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); shards];
    for (ext, v) in points {
        per_shard[shard_of(*ext, shards)].push((*ext, v.clone()));
    }
    let mut ids = Vec::with_capacity(shards);
    let mut dists = Vec::with_capacity(shards);
    for shard in &per_shard {
        let (i, d) = exhaustive_topk(Metric::L2, shard, query, k);
        ids.push(i);
        dists.push(d);
    }
    let (got_ids, got_dists) = merge_topk(&ids, &dists, k);

    assert_eq!(
        got_ids, want_ids,
        "sharded merge diverged from unsharded top-{k} ({shards} shards)"
    );
    assert_eq!(
        got_dists, want_dists,
        "merged distances must be bitwise equal to the unsharded ones"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn merged_shard_topk_equals_unsharded_topk(
        n in 1usize..120,
        k in 1usize..14,
        shards in 1usize..5,
        levels in 2u32..5,
        seed in 0u64..10_000,
    ) {
        let points = corpus(n, 6, levels, seed);
        let query: Vec<f32> = corpus(1, 6, levels, seed ^ 0xABCD)[0].1.clone();
        check_split(&points, &query, k, shards);
    }
}

#[test]
fn merge_handles_every_shard_count_on_one_corpus() {
    // One deterministic corpus through all supported splits, k beyond the
    // corpus size included (short answers must merge short, not pad).
    let points = corpus(40, 4, 3, 99);
    let query = vec![1.0, 0.0, 2.0, 1.0];
    for shards in 1..=4 {
        for k in [1, 3, 40, 64] {
            check_split(&points, &query, k, shards);
        }
    }
}
