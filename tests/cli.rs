//! End-to-end test of the `ann` CLI binary: gen → gt → build → search →
//! calibrate → info, plus error paths, driving the real executable.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ann"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ann_cli_tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = bin().args(args).output().expect("spawn ann");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn full_workflow_succeeds() {
    let dir = workdir("workflow");
    let base = dir.join("base.fvecs");
    let queries = dir.join("q.fvecs");
    let gt = dir.join("gt.ivecs");
    let index = dir.join("index.tmg");
    let (b, q, g, i) = (
        base.to_str().unwrap(),
        queries.to_str().unwrap(),
        gt.to_str().unwrap(),
        index.to_str().unwrap(),
    );

    let (ok, out, err) = run(&[
        "gen",
        "--recipe",
        "uqv-like",
        "--n",
        "800",
        "--nq",
        "20",
        "--seed",
        "3",
        "--base",
        b,
        "--queries",
        q,
    ]);
    assert!(ok, "gen failed: {err}");
    assert!(out.contains("800"));

    let (ok, _, err) =
        run(&["gt", "--metric", "l2", "--base", b, "--queries", q, "--k", "10", "--out", g]);
    assert!(ok, "gt failed: {err}");

    let (ok, out, err) = run(&[
        "build", "--algo", "tau-mng", "--metric", "l2", "--base", b, "--out", i, "--tau", "auto",
    ]);
    assert!(ok, "build failed: {err}");
    assert!(out.contains("tau = auto"));

    let (ok, out, err) = run(&[
        "search",
        "--algo",
        "tau-mng",
        "--metric",
        "l2",
        "--base",
        b,
        "--index",
        i,
        "--queries",
        q,
        "--k",
        "10",
        "--beam",
        "64",
        "--gt",
        g,
    ]);
    assert!(ok, "search failed: {err}");
    assert!(out.contains("recall@10"), "no recall line:\n{out}");
    // Parse the recall and demand a sane floor.
    let recall: f64 = out
        .lines()
        .find(|l| l.starts_with("recall@10"))
        .and_then(|l| l.split('=').nth(1))
        .and_then(|v| v.trim().parse().ok())
        .expect("parse recall");
    assert!(recall > 0.9, "CLI search recall too low: {recall}");

    let (ok, out, err) = run(&[
        "calibrate",
        "--algo",
        "tau-mng",
        "--metric",
        "l2",
        "--base",
        b,
        "--index",
        i,
        "--queries",
        q,
        "--gt",
        g,
        "--k",
        "10",
        "--target",
        "0.9",
    ]);
    assert!(ok, "calibrate failed: {err}");
    assert!(out.contains("reaches recall@10"));

    let (ok, out, err) =
        run(&["info", "--algo", "tau-mng", "--metric", "l2", "--base", b, "--index", i]);
    assert!(ok, "info failed: {err}");
    assert!(out.contains("tau-MNG"));
    assert!(out.contains("avg degree"));
}

#[test]
fn hnsw_build_and_search() {
    let dir = workdir("hnsw");
    let base = dir.join("base.fvecs");
    let queries = dir.join("q.fvecs");
    let index = dir.join("index.hnsw");
    let (b, q, i) = (base.to_str().unwrap(), queries.to_str().unwrap(), index.to_str().unwrap());
    assert!(
        run(&[
            "gen",
            "--recipe",
            "sift-like",
            "--n",
            "500",
            "--nq",
            "5",
            "--base",
            b,
            "--queries",
            q,
        ])
        .0
    );
    assert!(run(&["build", "--algo", "hnsw", "--metric", "l2", "--base", b, "--out", i]).0);
    let (ok, out, _) = run(&[
        "search",
        "--algo",
        "hnsw",
        "--metric",
        "l2",
        "--base",
        b,
        "--index",
        i,
        "--queries",
        q,
        "--k",
        "5",
        "--beam",
        "32",
    ]);
    assert!(ok);
    assert!(out.contains("QPS"));
}

#[test]
fn error_paths_fail_cleanly() {
    // Unknown subcommand.
    let (ok, _, err) = run(&["frobnicate", "--x", "1"]);
    assert!(!ok);
    assert!(err.contains("unknown subcommand"));
    // Missing flag.
    let (ok, _, err) = run(&["gen", "--recipe", "sift-like"]);
    assert!(!ok);
    assert!(err.contains("missing required"), "got: {err}");
    // Unknown recipe.
    let dir = workdir("errors");
    let b = dir.join("b.fvecs");
    let q = dir.join("q.fvecs");
    let (ok, _, err) = run(&[
        "gen",
        "--recipe",
        "no-such",
        "--base",
        b.to_str().unwrap(),
        "--queries",
        q.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(err.contains("unknown recipe"));
    // Nonexistent base file.
    let (ok, _, err) = run(&[
        "gt",
        "--metric",
        "l2",
        "--base",
        "/nonexistent.fvecs",
        "--queries",
        "/nonexistent.fvecs",
        "--k",
        "1",
        "--out",
        "/tmp/x.ivecs",
    ]);
    assert!(!ok);
    assert!(err.contains("error"));
    // Bad metric.
    let (ok, _, err) =
        run(&["gt", "--metric", "hamming", "--base", "/x", "--queries", "/x", "--out", "/x"]);
    assert!(!ok);
    assert!(err.contains("unknown metric"));
}

#[test]
fn help_prints_usage() {
    let (ok, out, _) = run(&["help"]);
    assert!(ok);
    assert!(out.contains("usage: ann"));
}
