//! Cross-crate integration: every index in the workspace, built over the
//! same corpus through its full pipeline, must honor the `AnnIndex`
//! contract and clear a recall floor.

use ann_suite::ann_graph::{AnnIndex, Scratch};
use ann_suite::ann_hnsw::{Hnsw, HnswParams};
use ann_suite::ann_knng::brute_force_knn_graph;
use ann_suite::ann_nsg::{build_nsg, build_ssg, NsgParams, SsgParams};
use ann_suite::ann_vamana::{build_vamana, VamanaParams};
use ann_suite::ann_vectors::accuracy::mean_recall_at_k;
use ann_suite::ann_vectors::synthetic::{mean_nn_distance, Recipe};
use ann_suite::ann_vectors::{brute_force_ground_truth, Metric, VecStore};
use ann_suite::tau_mg::{build_tau_mng, TauMngParams};
use std::sync::Arc;

const N: usize = 1_500;
const NQ: usize = 40;
const K: usize = 10;
const L: usize = 100;

struct Fixture {
    base: Arc<VecStore>,
    queries: VecStore,
    gt: ann_suite::ann_vectors::GroundTruth,
    metric: Metric,
}

fn fixture() -> Fixture {
    let ds = Recipe::SiftLike.build(N, NQ, 1234);
    let base = Arc::new(ds.base);
    let gt = brute_force_ground_truth(ds.metric, &base, &ds.queries, K).unwrap();
    Fixture { base, queries: ds.queries, gt, metric: ds.metric }
}

fn contract_and_recall(index: &dyn AnnIndex, f: &Fixture, floor: f64) {
    let mut scratch = Scratch::new(index.num_points());
    let mut results = Vec::with_capacity(f.queries.len());
    for q in 0..f.queries.len() as u32 {
        let r = index.search_with(f.queries.get(q), K, L, &mut scratch);
        // Contract: k results, ascending distances, ids in range, stats counted.
        assert_eq!(r.ids.len(), K, "{}", index.name());
        assert_eq!(r.dists.len(), K, "{}", index.name());
        assert!(r.dists.windows(2).all(|w| w[0] <= w[1]), "{} unsorted", index.name());
        assert!(r.ids.iter().all(|&id| (id as usize) < N), "{} bad id", index.name());
        assert!(r.stats.ndc > 0, "{} no distance evals", index.name());
        let mut dedup = r.ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), K, "{} duplicate results", index.name());
        results.push(r.ids);
    }
    let recall = mean_recall_at_k(&f.gt, &results, K);
    assert!(recall >= floor, "{} recall {recall} below floor {floor}", index.name());
}

#[test]
fn all_indexes_honor_contract_and_recall_floor() {
    let f = fixture();
    let knn = brute_force_knn_graph(f.metric, &f.base, 20).unwrap();
    let tau = mean_nn_distance(&f.base, 100, 0) * 0.05;

    let hnsw = Hnsw::build(f.base.clone(), f.metric, HnswParams::default()).unwrap();
    contract_and_recall(&hnsw, &f, 0.90);

    let nsg = build_nsg(f.base.clone(), f.metric, &knn, NsgParams::default()).unwrap();
    contract_and_recall(&nsg, &f, 0.90);

    let ssg = build_ssg(f.base.clone(), f.metric, &knn, SsgParams::default()).unwrap();
    contract_and_recall(&ssg, &f, 0.90);

    let vamana = build_vamana(f.base.clone(), f.metric, VamanaParams::default()).unwrap();
    contract_and_recall(&vamana, &f, 0.90);

    let tmng =
        build_tau_mng(f.base.clone(), f.metric, &knn, TauMngParams { tau, ..Default::default() })
            .unwrap();
    contract_and_recall(&tmng, &f, 0.90);
}

/// SQ8 fast path: at equal beam width, quantized expansion with exact
/// re-rank must stay within 0.01 recall@10 of full precision, per metric.
/// L2 and Cosine run through the full τ-MNG pipeline (`enable_sq8` flips the
/// serving path); Ip has no synthetic recipe, so it runs through the
/// graph-level kernel on the same graph against Ip ground truth — the
/// comparison is still sq8-vs-full at identical beam width.
#[test]
fn sq8_rerank_recall_within_001_of_full_precision_per_metric() {
    use ann_suite::ann_graph::{beam_search_dyn, beam_search_sq8_rerank};
    use ann_suite::ann_vectors::Sq8Store;

    let mut covered = Vec::new();
    for recipe in [Recipe::SiftLike, Recipe::GloveLike] {
        let ds = recipe.build(N, NQ, 1234);
        let base = Arc::new(ds.base);
        let gt = brute_force_ground_truth(ds.metric, &base, &ds.queries, K).unwrap();
        let knn = brute_force_knn_graph(ds.metric, &base, 20).unwrap();
        let tau = mean_nn_distance(&base, 100, 0) * 0.05;
        let mut tmng = build_tau_mng(
            base.clone(),
            ds.metric,
            &knn,
            TauMngParams { tau, ..Default::default() },
        )
        .unwrap();

        let mut scratch = Scratch::new(tmng.num_points());
        let run = |idx: &dyn AnnIndex, scratch: &mut Scratch| -> Vec<Vec<u32>> {
            (0..NQ as u32)
                .map(|q| idx.search_with(ds.queries.get(q), K, L, scratch).ids)
                .collect()
        };
        let full = run(&tmng, &mut scratch);
        tmng.enable_sq8();
        assert!(tmng.sq8().is_some(), "enable_sq8 must install the code store");
        let quant = run(&tmng, &mut scratch);

        let r_full = mean_recall_at_k(&gt, &full, K);
        let r_sq8 = mean_recall_at_k(&gt, &quant, K);
        assert!(
            r_sq8 >= r_full - 0.01,
            "{:?}: sq8 recall {r_sq8} more than 0.01 below full-precision {r_full}",
            ds.metric
        );
        covered.push(ds.metric);
    }
    assert!(covered.contains(&Metric::L2) && covered.contains(&Metric::Cosine));

    // Ip arm: same graph, graph-level kernels, Ip ground truth.
    let ds = Recipe::SiftLike.build(N, NQ, 1234);
    let base = Arc::new(ds.base);
    let gt_ip = brute_force_ground_truth(Metric::Ip, &base, &ds.queries, K).unwrap();
    let knn = brute_force_knn_graph(ds.metric, &base, 20).unwrap();
    let tau = mean_nn_distance(&base, 100, 0) * 0.05;
    let tmng =
        build_tau_mng(base.clone(), ds.metric, &knn, TauMngParams { tau, ..Default::default() })
            .unwrap();
    let sq8 = Sq8Store::quantize(&base);
    let (graph, entry) = (tmng.graph(), tmng.entry_point());

    let mut scratch = Scratch::new(tmng.num_points());
    let mut full = Vec::with_capacity(NQ);
    let mut quant = Vec::with_capacity(NQ);
    for q in 0..NQ as u32 {
        let query = ds.queries.get(q);
        beam_search_dyn(Metric::Ip, &base, graph, &[entry], query, L, &mut scratch);
        full.push(scratch.pool.top_k(K).0);
        let r = beam_search_sq8_rerank(
            Metric::Ip,
            &base,
            &sq8,
            graph,
            &[entry],
            query,
            K,
            L,
            &mut scratch,
        );
        quant.push(r.ids);
    }
    let r_full = mean_recall_at_k(&gt_ip, &full, K);
    let r_sq8 = mean_recall_at_k(&gt_ip, &quant, K);
    assert!(
        r_sq8 >= r_full - 0.01,
        "Ip: sq8 recall {r_sq8} more than 0.01 below full-precision {r_full}"
    );
}

#[test]
fn k_larger_than_l_is_clamped() {
    let f = fixture();
    let hnsw = Hnsw::build(f.base.clone(), f.metric, HnswParams::default()).unwrap();
    let r = hnsw.search(f.queries.get(0), 50, 10); // l < k
    assert_eq!(r.ids.len(), 50, "l must clamp up to k");
}

#[test]
fn k_equal_n_returns_all_points_on_connected_index() {
    let ds = Recipe::UqvLike.build(60, 3, 5);
    let base = Arc::new(ds.base);
    let hnsw = Hnsw::build(base, ds.metric, HnswParams::default()).unwrap();
    let r = hnsw.search(ds.queries.get(0), 60, 200);
    let mut ids = r.ids;
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 60, "full sweep must reach every point");
}
