//! Harness integration: the eval crate measuring a real index, and the
//! monotone relationships the paper's figures rely on (recall rises with L,
//! NDC rises with L).

use ann_suite::ann_eval::{qps_at_recall, run_sweep, SweepConfig};
use ann_suite::ann_hnsw::{Hnsw, HnswParams};
use ann_suite::ann_vectors::brute_force_ground_truth;
use ann_suite::ann_vectors::synthetic::Recipe;
use std::sync::Arc;

#[test]
fn sweep_on_real_index_is_sane_and_monotone() {
    let ds = Recipe::SiftLike.build(1_200, 60, 77);
    let base = Arc::new(ds.base);
    let gt = brute_force_ground_truth(ds.metric, &base, &ds.queries, 10).unwrap();
    let idx = Hnsw::build(base, ds.metric, HnswParams::default()).unwrap();
    let points = run_sweep(
        &idx,
        &ds.queries,
        &gt,
        &SweepConfig { k: 10, ls: vec![10, 30, 100, 300], repeats: 1 },
    );
    assert_eq!(points.len(), 4);
    // NDC strictly grows with L; recall is non-decreasing (tiny noise allowed).
    for w in points.windows(2) {
        assert!(w[1].ndc > w[0].ndc, "NDC must grow with L: {points:?}");
        assert!(w[1].recall >= w[0].recall - 0.01, "recall fell: {points:?}");
        assert!(w[1].hops >= w[0].hops, "hops must not shrink with L");
    }
    // At L = 300 on 1.2k points this index should be essentially exact.
    assert!(points.last().unwrap().recall > 0.99);
    assert!(points.iter().all(|p| p.qps > 0.0 && p.qps.is_finite()));
    // The interpolator must find a QPS for a reachable target…
    assert!(qps_at_recall(&points, 0.95).is_some());
    // …and refuse an unreachable one.
    assert!(qps_at_recall(&points, 1.01).is_none());
}

#[test]
fn repro_e1_runs_at_fast_scale() {
    // Smoke the experiment layer end to end (report + CSV emission).
    let tmp = std::env::temp_dir().join("ann_harness_e2e_results");
    std::env::set_var("ANN_RESULTS_DIR", &tmp);
    let report = ann_suite::ann_bench_experiments_e1();
    assert!(report.contains("sift-like"));
    assert!(report.contains("dataset"));
    let csv = std::fs::read_to_string(tmp.join("e1_datasets.csv")).unwrap();
    assert!(csv.lines().count() >= 3, "csv must have header + rows");
    std::env::remove_var("ANN_RESULTS_DIR");
}
