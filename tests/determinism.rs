//! Determinism guarantees: everything seeded must reproduce bit-for-bit,
//! independent of thread count where the construction is order-independent.

use ann_suite::ann_graph::{AnnIndex, GraphView};
use ann_suite::ann_vectors::synthetic::{tau_tube_queries, Recipe};
use ann_suite::ann_vectors::Metric;
use ann_suite::tau_mg::{build_tau_mg, TauMgParams};
use std::sync::Arc;

#[test]
fn dataset_recipes_are_bit_reproducible() {
    let a = Recipe::GloveLike.build(300, 20, 99);
    let b = Recipe::GloveLike.build(300, 20, 99);
    assert_eq!(a.base, b.base);
    assert_eq!(a.queries, b.queries);
    let c = Recipe::GloveLike.build(300, 20, 100);
    assert_ne!(a.base, c.base, "different seed must differ");
}

#[test]
fn tube_queries_are_reproducible() {
    let ds = Recipe::SiftLike.build(200, 1, 5);
    let q1 = tau_tube_queries(&ds.base, 30, 0.5, 7);
    let q2 = tau_tube_queries(&ds.base, 30, 0.5, 7);
    assert_eq!(q1, q2);
}

#[test]
fn exact_tau_mg_is_thread_count_independent() {
    // parallel_map preserves index order and each row is a pure function of
    // the input, so the exact builder must produce identical graphs at any
    // thread count.
    let ds = Recipe::UqvLike.build(250, 1, 17);
    let base = Arc::new(ds.base);
    let params = TauMgParams { tau: 0.2, degree_cap: Some(16) };
    let a = build_tau_mg(base.clone(), Metric::L2, params).unwrap();
    let b = build_tau_mg(base.clone(), Metric::L2, params).unwrap();
    assert_eq!(a.entry_point(), b.entry_point());
    for u in 0..base.len() as u32 {
        assert_eq!(a.graph().neighbors(u), b.graph().neighbors(u));
    }
    assert_eq!(a.to_bytes(), b.to_bytes(), "serialized form must be identical");
}

#[test]
fn searches_are_deterministic_given_a_graph() {
    let ds = Recipe::SiftLike.build(400, 10, 23);
    let base = Arc::new(ds.base);
    let idx =
        build_tau_mg(base, Metric::L2, TauMgParams { tau: 0.1, degree_cap: Some(16) }).unwrap();
    for q in 0..ds.queries.len() as u32 {
        let a = idx.search(ds.queries.get(q), 5, 32);
        let b = idx.search(ds.queries.get(q), 5, 32);
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.stats, b.stats);
    }
}
