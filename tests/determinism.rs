//! Determinism guarantees: everything seeded must reproduce bit-for-bit,
//! independent of thread count where the construction is order-independent.

use ann_suite::ann_graph::{
    bfs_order, invert_order, AnnIndex, FrozenGraphIndex, GraphView, QueryResult, Scratch,
};
use ann_suite::ann_hcnng::{build_hcnng, HcnngParams};
use ann_suite::ann_hnsw::{Hnsw, HnswParams};
use ann_suite::ann_knng::brute_force_knn_graph;
use ann_suite::ann_nsg::{build_nsg, build_ssg, NsgParams, SsgParams};
use ann_suite::ann_vamana::{build_vamana, VamanaParams};
use ann_suite::ann_vectors::synthetic::{mean_nn_distance, tau_tube_queries, Recipe};
use ann_suite::ann_vectors::Metric;
use ann_suite::tau_mg::{build_tau_mg, build_tau_mng, TauMgParams, TauMngParams};
use std::sync::Arc;

#[test]
fn dataset_recipes_are_bit_reproducible() {
    let a = Recipe::GloveLike.build(300, 20, 99);
    let b = Recipe::GloveLike.build(300, 20, 99);
    assert_eq!(a.base, b.base);
    assert_eq!(a.queries, b.queries);
    let c = Recipe::GloveLike.build(300, 20, 100);
    assert_ne!(a.base, c.base, "different seed must differ");
}

#[test]
fn tube_queries_are_reproducible() {
    let ds = Recipe::SiftLike.build(200, 1, 5);
    let q1 = tau_tube_queries(&ds.base, 30, 0.5, 7);
    let q2 = tau_tube_queries(&ds.base, 30, 0.5, 7);
    assert_eq!(q1, q2);
}

#[test]
fn exact_tau_mg_is_thread_count_independent() {
    // parallel_map preserves index order and each row is a pure function of
    // the input, so the exact builder must produce identical graphs at any
    // thread count.
    let ds = Recipe::UqvLike.build(250, 1, 17);
    let base = Arc::new(ds.base);
    let params = TauMgParams { tau: 0.2, degree_cap: Some(16) };
    let a = build_tau_mg(base.clone(), Metric::L2, params).unwrap();
    let b = build_tau_mg(base.clone(), Metric::L2, params).unwrap();
    assert_eq!(a.entry_point(), b.entry_point());
    for u in 0..base.len() as u32 {
        assert_eq!(a.graph().neighbors(u), b.graph().neighbors(u));
    }
    assert_eq!(a.to_bytes(), b.to_bytes(), "serialized form must be identical");
}

/// Assert two searches are the same traversal modulo the id relabeling:
/// ids map back through `order[new] = old`, distances are bit-equal, and the
/// work counters (ndc/hops/skipped) are untouched — relayout may only change
/// memory locality, never the computation.
fn assert_isomorphic(name: &str, q: usize, a: &QueryResult, b: &QueryResult, order: &[u32]) {
    let mapped: Vec<u32> = b.ids.iter().map(|&id| order[id as usize]).collect();
    assert_eq!(a.ids, mapped, "{name} q{q}: ids changed under relayout");
    let (da, db): (Vec<u32>, Vec<u32>) = (
        a.dists.iter().map(|d| d.to_bits()).collect(),
        b.dists.iter().map(|d| d.to_bits()).collect(),
    );
    assert_eq!(da, db, "{name} q{q}: distances not bit-identical under relayout");
    assert_eq!(a.stats, b.stats, "{name} q{q}: relayout changed the work done");
}

#[test]
fn bfs_relayout_is_search_invariant_across_all_builders() {
    let ds = Recipe::SiftLike.build(600, 12, 77);
    let base = Arc::new(ds.base);
    let knn = brute_force_knn_graph(ds.metric, &base, 20).unwrap();
    let tau = mean_nn_distance(&base, 100, 0) * 0.05;

    // NSG / SSG / Vamana / HCNNG share FrozenGraphIndex::relayout_bfs.
    let frozen: Vec<FrozenGraphIndex> = vec![
        build_nsg(base.clone(), ds.metric, &knn, NsgParams::default()).unwrap(),
        build_ssg(base.clone(), ds.metric, &knn, SsgParams::default()).unwrap(),
        build_vamana(base.clone(), ds.metric, VamanaParams::default()).unwrap(),
        build_hcnng(base.clone(), ds.metric, HcnngParams::default()).unwrap(),
    ];
    for idx in &frozen {
        let (relay, order) = idx.relayout_bfs();
        for q in 0..ds.queries.len() as u32 {
            let a = idx.search(ds.queries.get(q), 10, 64);
            let b = relay.search(ds.queries.get(q), 10, 64);
            assert_isomorphic(idx.name(), q as usize, &a, &b, &order);
        }
    }

    // τ-MG and τ-MNG go through TauIndex::relayout_bfs (which also carries
    // the stored edge lengths and any SQ8 side-car through the permutation).
    let tmg =
        build_tau_mg(base.clone(), ds.metric, TauMgParams { tau, degree_cap: Some(16) }).unwrap();
    let tmng =
        build_tau_mng(base.clone(), ds.metric, &knn, TauMngParams { tau, ..Default::default() })
            .unwrap();
    for idx in [&tmg, &tmng] {
        let (relay, order) = idx.relayout_bfs();
        for q in 0..ds.queries.len() as u32 {
            let a = idx.search(ds.queries.get(q), 10, 64);
            let b = relay.search(ds.queries.get(q), 10, 64);
            assert_isomorphic(idx.name(), q as usize, &a, &b, &order);
        }
    }

    // HNSW: relayout its bottom layer by hand with the same primitives and
    // run the raw beam over both layouts.
    let hnsw = Hnsw::build(base.clone(), ds.metric, HnswParams::default()).unwrap();
    let graph = hnsw.bottom_layer();
    let (entry, _) = hnsw.entry_point();
    let order = bfs_order(graph, entry);
    let old_to_new = invert_order(&order);
    let pgraph = graph.permute(&order, &old_to_new);
    let pstore = base.permuted(&order);
    let pentry = old_to_new[entry as usize];
    let mut scratch = Scratch::new(base.len());
    for q in 0..ds.queries.len() as u32 {
        let query = ds.queries.get(q);
        let sa = ann_suite::ann_graph::beam_search_dyn(
            ds.metric,
            &base,
            graph,
            &[entry],
            query,
            64,
            &mut scratch,
        );
        let (ia, da) = scratch.pool.top_k(10);
        let sb = ann_suite::ann_graph::beam_search_dyn(
            ds.metric,
            &pstore,
            &pgraph,
            &[pentry],
            query,
            64,
            &mut scratch,
        );
        let (ib, db) = scratch.pool.top_k(10);
        let a = QueryResult { ids: ia, dists: da, stats: sa };
        let b = QueryResult { ids: ib, dists: db, stats: sb };
        assert_isomorphic("HNSW-bottom", q as usize, &a, &b, &order);
    }
}

/// The zero-filter read path must be *bit-identical* to the plain one:
/// `Snapshot::search_filtered` with `expr = None` dispatches to exactly the
/// code `Snapshot::search` runs — same ids, same distance bits, same work
/// counters — including when tombstones are present (the deletion filter
/// and its beam widening engage identically on both paths).
#[test]
fn zero_filter_search_is_bit_identical_to_the_plain_path() {
    use ann_suite::ann_service::{IndexWriter, Metrics};

    let ds = Recipe::SiftLike.build(500, 16, 31);
    let base = Arc::new(ds.base);
    let knn = brute_force_knn_graph(ds.metric, &base, 16).unwrap();
    let params = TauMngParams { tau: 0.12, ..Default::default() };
    let idx = build_tau_mng(base.clone(), ds.metric, &knn, params).unwrap();
    let (mut writer, cell) = IndexWriter::attach(idx, params, Arc::new(Metrics::new()));
    for ext in (0..60u64).map(|i| i * 7) {
        writer.delete(ext).unwrap();
    }
    writer.publish_tombstones().unwrap();

    let snap = cell.load();
    let mut scratch = Scratch::new(base.len());
    for q in 0..ds.queries.len() as u32 {
        let a = snap.search(ds.queries.get(q), 10, 48, &mut scratch);
        let b = snap.search_filtered(ds.queries.get(q), 10, 48, None, &mut scratch);
        assert_eq!(a.ids, b.ids, "q{q}: zero-filter ids diverged");
        let (da, db): (Vec<u32>, Vec<u32>) = (
            a.dists.iter().map(|d| d.to_bits()).collect(),
            b.dists.iter().map(|d| d.to_bits()).collect(),
        );
        assert_eq!(da, db, "q{q}: zero-filter distances not bit-identical");
        assert_eq!(a.stats, b.stats, "q{q}: zero-filter path did different work");
    }
}

#[test]
fn searches_are_deterministic_given_a_graph() {
    let ds = Recipe::SiftLike.build(400, 10, 23);
    let base = Arc::new(ds.base);
    let idx =
        build_tau_mg(base, Metric::L2, TauMgParams { tau: 0.1, degree_cap: Some(16) }).unwrap();
    for q in 0..ds.queries.len() as u32 {
        let a = idx.search(ds.queries.get(q), 5, 32);
        let b = idx.search(ds.queries.get(q), 5, 32);
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.stats, b.stats);
    }
}
