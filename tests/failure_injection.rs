//! Failure injection across crate boundaries: degenerate inputs must come
//! back as typed errors (or documented clamps), never wrong answers or
//! panics from library code.

use ann_suite::ann_graph::AnnIndex;
use ann_suite::ann_hnsw::{Hnsw, HnswParams};
use ann_suite::ann_knng::{brute_force_knn_graph, nn_descent, NnDescentParams};
use ann_suite::ann_nsg::{build_nsg, NsgParams};
use ann_suite::ann_vectors::error::AnnError;
use ann_suite::ann_vectors::synthetic::uniform;
use ann_suite::ann_vectors::{brute_force_ground_truth, Metric, VecStore};
use ann_suite::tau_mg::{build_tau_mg, build_tau_mng, TauIndex, TauMgParams, TauMngParams};
use std::sync::Arc;

#[test]
fn empty_dataset_is_rejected_everywhere() {
    let empty = Arc::new(VecStore::new(8).unwrap());
    assert!(matches!(
        Hnsw::build(empty.clone(), Metric::L2, HnswParams::default()),
        Err(AnnError::EmptyDataset)
    ));
    assert!(matches!(
        build_tau_mg(empty.clone(), Metric::L2, TauMgParams::default()),
        Err(AnnError::EmptyDataset)
    ));
    assert!(matches!(
        brute_force_knn_graph(Metric::L2, &empty, 3),
        Err(AnnError::EmptyDataset)
    ));
    let q = VecStore::from_rows(&[vec![0.0; 8]]).unwrap();
    assert!(brute_force_ground_truth(Metric::L2, &empty, &q, 1).is_err());
}

#[test]
fn dimension_mismatch_is_typed() {
    let base = Arc::new(uniform(8, 50, 1));
    let q4 = VecStore::from_rows(&[vec![0.0; 4]]).unwrap();
    match brute_force_ground_truth(Metric::L2, &base, &q4, 1) {
        Err(AnnError::DimensionMismatch { expected: 8, got: 4 }) => {}
        other => panic!("expected typed dimension mismatch, got {other:?}"),
    }
}

#[test]
fn k_exceeding_n_is_rejected() {
    let base = Arc::new(uniform(4, 10, 2));
    let q = uniform(4, 2, 3);
    assert!(brute_force_ground_truth(Metric::L2, &base, &q, 11).is_err());
    assert!(brute_force_knn_graph(Metric::L2, &base, 10).is_err());
    assert!(nn_descent(Metric::L2, &base, NnDescentParams { k: 10, ..Default::default() }).is_err());
}

#[test]
fn duplicate_points_do_not_break_any_builder() {
    // A pathological store: every point duplicated, including exact ties.
    let mut rows = Vec::new();
    for i in 0..40 {
        let v = vec![(i / 2) as f32, ((i / 2) % 5) as f32];
        rows.push(v);
    }
    let base = Arc::new(VecStore::from_rows(&rows).unwrap());
    let knn = brute_force_knn_graph(Metric::L2, &base, 5).unwrap();
    let hnsw = Hnsw::build(base.clone(), Metric::L2, HnswParams::default()).unwrap();
    let nsg = build_nsg(base.clone(), Metric::L2, &knn, NsgParams::default()).unwrap();
    let tmg =
        build_tau_mg(base, Metric::L2, TauMgParams { tau: 0.1, degree_cap: Some(16) }).unwrap();
    for idx in [&hnsw as &dyn AnnIndex, &nsg, &tmg] {
        let r = idx.search(&[0.2, 0.2], 5, 20);
        assert_eq!(r.ids.len(), 5, "{}", idx.name());
        assert!(
            (r.dists[0] - 0.08).abs() < 1e-6,
            "{} nearest duplicate pair: {}",
            idx.name(),
            r.dists[0]
        );
    }
}

#[test]
fn tau_constructions_reject_non_metric_spaces() {
    let base = Arc::new(uniform(4, 30, 5));
    let knn = brute_force_knn_graph(Metric::Ip, &base, 5).unwrap();
    let e = build_tau_mng(base.clone(), Metric::Ip, &knn, TauMngParams::default()).unwrap_err();
    assert!(e.to_string().contains("metric space"), "unhelpful error: {e}");
    assert!(build_tau_mg(base, Metric::Ip, TauMgParams::default()).is_err());
}

#[test]
fn truncated_and_garbled_index_files_are_refused() {
    let base = Arc::new(uniform(4, 60, 6));
    let idx = build_tau_mg(base.clone(), Metric::L2, TauMgParams { tau: 0.1, degree_cap: Some(8) })
        .unwrap();
    let bytes = idx.to_bytes();
    // Truncations at several depths.
    for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            TauIndex::from_bytes(&bytes[..cut], base.clone(), Metric::L2).is_err(),
            "truncation at {cut} accepted"
        );
    }
    // Every corrupted byte position in the header region must be caught.
    for pos in 0..32 {
        let mut garbled = bytes.clone();
        garbled[pos] ^= 0xFF;
        assert!(
            TauIndex::from_bytes(&garbled, base.clone(), Metric::L2).is_err(),
            "garbled byte {pos} accepted"
        );
    }
}

#[test]
fn single_point_corpus_works_end_to_end() {
    let base = Arc::new(VecStore::from_rows(&[vec![1.0, 1.0]]).unwrap());
    let hnsw = Hnsw::build(base.clone(), Metric::L2, HnswParams::default()).unwrap();
    let r = hnsw.search(&[0.0, 0.0], 1, 4);
    assert_eq!(r.ids, vec![0]);
    let tmg = build_tau_mg(base, Metric::L2, TauMgParams::default()).unwrap();
    let r = tmg.search(&[9.0, 9.0], 1, 4);
    assert_eq!(r.ids, vec![0]);
}
