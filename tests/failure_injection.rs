//! Failure injection across crate boundaries: degenerate inputs must come
//! back as typed errors (or documented clamps), never wrong answers or
//! panics from library code.

use ann_suite::ann_graph::AnnIndex;
use ann_suite::ann_hnsw::{Hnsw, HnswParams};
use ann_suite::ann_knng::{brute_force_knn_graph, nn_descent, NnDescentParams};
use ann_suite::ann_nsg::{build_nsg, NsgParams};
use ann_suite::ann_service::{IndexWriter, Metrics, SnapshotStore};
use ann_suite::ann_vectors::error::{AnnError, IntegrityCheck};
use ann_suite::ann_vectors::io::fnv1a;
use ann_suite::ann_vectors::synthetic::uniform;
use ann_suite::ann_vectors::{brute_force_ground_truth, Metric, VecStore};
use ann_suite::tau_mg::{build_tau_mg, build_tau_mng, TauIndex, TauMgParams, TauMngParams};
use std::sync::Arc;

#[test]
fn empty_dataset_is_rejected_everywhere() {
    let empty = Arc::new(VecStore::new(8).unwrap());
    assert!(matches!(
        Hnsw::build(empty.clone(), Metric::L2, HnswParams::default()),
        Err(AnnError::EmptyDataset)
    ));
    assert!(matches!(
        build_tau_mg(empty.clone(), Metric::L2, TauMgParams::default()),
        Err(AnnError::EmptyDataset)
    ));
    assert!(matches!(
        brute_force_knn_graph(Metric::L2, &empty, 3),
        Err(AnnError::EmptyDataset)
    ));
    let q = VecStore::from_rows(&[vec![0.0; 8]]).unwrap();
    assert!(brute_force_ground_truth(Metric::L2, &empty, &q, 1).is_err());
}

#[test]
fn dimension_mismatch_is_typed() {
    let base = Arc::new(uniform(8, 50, 1));
    let q4 = VecStore::from_rows(&[vec![0.0; 4]]).unwrap();
    match brute_force_ground_truth(Metric::L2, &base, &q4, 1) {
        Err(AnnError::DimensionMismatch { expected: 8, got: 4 }) => {}
        other => panic!("expected typed dimension mismatch, got {other:?}"),
    }
}

#[test]
fn k_exceeding_n_is_rejected() {
    let base = Arc::new(uniform(4, 10, 2));
    let q = uniform(4, 2, 3);
    assert!(brute_force_ground_truth(Metric::L2, &base, &q, 11).is_err());
    assert!(brute_force_knn_graph(Metric::L2, &base, 10).is_err());
    assert!(nn_descent(Metric::L2, &base, NnDescentParams { k: 10, ..Default::default() }).is_err());
}

#[test]
fn duplicate_points_do_not_break_any_builder() {
    // A pathological store: every point duplicated, including exact ties.
    let mut rows = Vec::new();
    for i in 0..40 {
        let v = vec![(i / 2) as f32, ((i / 2) % 5) as f32];
        rows.push(v);
    }
    let base = Arc::new(VecStore::from_rows(&rows).unwrap());
    let knn = brute_force_knn_graph(Metric::L2, &base, 5).unwrap();
    let hnsw = Hnsw::build(base.clone(), Metric::L2, HnswParams::default()).unwrap();
    let nsg = build_nsg(base.clone(), Metric::L2, &knn, NsgParams::default()).unwrap();
    let tmg =
        build_tau_mg(base, Metric::L2, TauMgParams { tau: 0.1, degree_cap: Some(16) }).unwrap();
    for idx in [&hnsw as &dyn AnnIndex, &nsg, &tmg] {
        let r = idx.search(&[0.2, 0.2], 5, 20);
        assert_eq!(r.ids.len(), 5, "{}", idx.name());
        assert!(
            (r.dists[0] - 0.08).abs() < 1e-6,
            "{} nearest duplicate pair: {}",
            idx.name(),
            r.dists[0]
        );
    }
}

#[test]
fn tau_constructions_reject_non_metric_spaces() {
    let base = Arc::new(uniform(4, 30, 5));
    let knn = brute_force_knn_graph(Metric::Ip, &base, 5).unwrap();
    let e = build_tau_mng(base.clone(), Metric::Ip, &knn, TauMngParams::default()).unwrap_err();
    assert!(e.to_string().contains("metric space"), "unhelpful error: {e}");
    assert!(build_tau_mg(base, Metric::Ip, TauMgParams::default()).is_err());
}

#[test]
fn truncated_and_garbled_index_files_are_refused() {
    let base = Arc::new(uniform(4, 60, 6));
    let idx = build_tau_mg(base.clone(), Metric::L2, TauMgParams { tau: 0.1, degree_cap: Some(8) })
        .unwrap();
    let bytes = idx.to_bytes();
    // Truncations at several depths.
    for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            TauIndex::from_bytes(&bytes[..cut], base.clone(), Metric::L2).is_err(),
            "truncation at {cut} accepted"
        );
    }
    // Every corrupted byte position in the header region must be caught.
    for pos in 0..32 {
        let mut garbled = bytes.clone();
        garbled[pos] ^= 0xFF;
        assert!(
            TauIndex::from_bytes(&garbled, base.clone(), Metric::L2).is_err(),
            "garbled byte {pos} accepted"
        );
    }
}

/// Persist one real snapshot (generation 0) into a fresh directory and
/// return the store plus the raw bytes of the snapshot file.
fn persisted_snapshot(tag: &str) -> (Arc<SnapshotStore>, std::path::PathBuf, Vec<u8>) {
    let dir = std::env::temp_dir()
        .join("ann_suite_disk_faults")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base = Arc::new(uniform(5, 70, 8));
    let knn = brute_force_knn_graph(Metric::L2, &base, 8).unwrap();
    let params = TauMngParams { tau: 0.1, r: 16, l: 48, c: 150 };
    let idx = build_tau_mng(base, Metric::L2, &knn, params).unwrap();
    let store = SnapshotStore::open(&dir).unwrap();
    let (_writer, _cell) =
        IndexWriter::attach_durable(idx, params, Arc::new(Metrics::new()), Arc::clone(&store));
    let path = dir.join("gen-00000000000000000000.snap");
    let bytes = std::fs::read(&path).unwrap();
    (store, path, bytes)
}

fn expect_check(store: &SnapshotStore, want: IntegrityCheck) {
    match store.load_generation(0) {
        Err(AnnError::CorruptFile(ctx)) => {
            assert_eq!(ctx.check, want, "wrong check blamed: {}", ctx.detail);
            assert_eq!(ctx.generation, Some(0));
            assert!(ctx.path.ends_with("gen-00000000000000000000.snap"));
        }
        other => panic!("expected CorruptFile({want:?}), got {other:?}"),
    }
}

#[test]
fn zero_length_snapshot_is_a_typed_truncation() {
    let (store, path, _bytes) = persisted_snapshot("zero-length");
    std::fs::write(&path, b"").unwrap();
    expect_check(&store, IntegrityCheck::Truncated);
}

#[test]
fn truncated_snapshots_are_typed_at_both_depths() {
    // Cut below the minimal envelope: blamed on truncation.
    let (store, path, bytes) = persisted_snapshot("truncated-short");
    std::fs::write(&path, &bytes[..40]).unwrap();
    expect_check(&store, IntegrityCheck::Truncated);
    // Cut mid-payload: long enough to parse, caught by the checksum.
    let (store, path, bytes) = persisted_snapshot("truncated-long");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    expect_check(&store, IntegrityCheck::Checksum);
}

#[test]
fn bit_flipped_snapshot_is_a_typed_checksum_failure() {
    let (store, path, mut bytes) = persisted_snapshot("bit-flip");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&path, &bytes).unwrap();
    expect_check(&store, IntegrityCheck::Checksum);
}

#[test]
fn wrong_version_snapshot_is_a_typed_version_skew() {
    // Bump the version field and re-seal the checksum, so the *only*
    // defect is the version — proving version skew is not misreported as
    // corruption.
    let (store, path, mut bytes) = persisted_snapshot("wrong-version");
    bytes[4] = 0x7F;
    let body = bytes.len() - 8;
    let sum = fnv1a(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    expect_check(&store, IntegrityCheck::Version);
}

#[test]
fn recovery_quarantines_damaged_newest_and_falls_back() {
    let (store, path, bytes) = persisted_snapshot("fallback");
    // Forge a damaged "generation 1" from real generation-0 bytes.
    let newer = path.with_file_name("gen-00000000000000000001.snap");
    let mut damaged = bytes;
    let mid = damaged.len() / 3;
    damaged[mid] ^= 0x01;
    std::fs::write(&newer, &damaged).unwrap();

    let report = store.recover().unwrap();
    let rec = report.recovered.expect("older valid generation must be served");
    assert_eq!(rec.generation, 0);
    assert_eq!(report.quarantined.len(), 1);
    assert!(matches!(report.quarantined[0].1, AnnError::CorruptFile(_)));
    assert!(!newer.exists(), "damaged file left in place");
    assert!(
        newer.with_file_name("gen-00000000000000000001.snap.corrupt").exists(),
        "damaged file must be preserved under quarantine, not deleted"
    );
}

#[test]
fn single_point_corpus_works_end_to_end() {
    let base = Arc::new(VecStore::from_rows(&[vec![1.0, 1.0]]).unwrap());
    let hnsw = Hnsw::build(base.clone(), Metric::L2, HnswParams::default()).unwrap();
    let r = hnsw.search(&[0.0, 0.0], 1, 4);
    assert_eq!(r.ids, vec![0]);
    let tmg = build_tau_mg(base, Metric::L2, TauMgParams::default()).unwrap();
    let r = tmg.search(&[9.0, 9.0], 1, 4);
    assert_eq!(r.ids, vec![0]);
}
