//! Corrupted-index fixtures for the graph-invariant auditor.
//!
//! Each test plants exactly one class of corruption in an otherwise sound
//! graph and asserts the auditor reports that violation (and pinpoints the
//! offending node), then the final test builds every index in the workspace
//! cleanly and asserts the full audit finds nothing — the auditor must be
//! sensitive to real corruption and silent on healthy indexes.

use ann_suite::ann_audit::{audit_external_ids, audit_graph, AuditOptions, Violation};
use ann_suite::ann_eval::{audit_bare_graph, audit_entry_graph, audit_frozen, audit_tau};
use ann_suite::ann_graph::{AnnIndex, VarGraph};
use ann_suite::ann_hcnng::build_hcnng;
use ann_suite::ann_hnsw::Hnsw;
use ann_suite::ann_knng::brute_force_knn_graph;
use ann_suite::ann_nsg::{build_nsg, build_ssg};
use ann_suite::ann_vamana::build_vamana;
use ann_suite::ann_vectors::synthetic::{mean_nn_distance, Recipe};
use ann_suite::tau_mg::{build_tau_mng, TauMngParams};
use std::sync::Arc;

/// A sound little graph: bidirectional ring over `n` nodes, so every node is
/// reachable from any entry and every degree is exactly 2.
fn ring(n: usize) -> VarGraph {
    let mut g = VarGraph::new(n);
    for i in 0..n as u32 {
        let next = (i + 1) % n as u32;
        g.add_edge(i, next);
        g.add_edge(next, i);
    }
    g
}

fn audit_ring(g: &VarGraph) -> Vec<Violation> {
    audit_graph(g, Some(0), Some(3))
}

#[test]
fn sound_ring_is_clean() {
    assert_eq!(audit_ring(&ring(10)), Vec::new());
}

#[test]
fn out_of_bounds_edge_is_reported() {
    let mut g = ring(10);
    g.add_edge(4, 99);
    let v = audit_ring(&g);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::EdgeOutOfBounds { node: 4, target: 99, n: 10 })),
        "{v:?}"
    );
}

#[test]
fn self_loop_is_reported() {
    let mut g = ring(10);
    g.add_edge(7, 7);
    let v = audit_ring(&g);
    assert!(v.iter().any(|x| matches!(x, Violation::SelfLoop { node: 7 })), "{v:?}");
}

#[test]
fn duplicate_neighbor_is_reported() {
    let mut g = ring(10);
    // Node 3 already lists 4; list it again.
    g.add_edge(3, 4);
    let v = audit_ring(&g);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::DuplicateNeighbor { node: 3, target: 4 })),
        "{v:?}"
    );
}

#[test]
fn unreachable_node_is_reported() {
    let mut g = ring(10);
    // Cut node 5 out of the ring: nothing points at it any more, but its
    // own out-edges stay valid, so the graph remains structurally sound.
    g.set_neighbors(4, vec![3]);
    g.set_neighbors(6, vec![7]);
    let v = audit_ring(&g);
    assert!(
        v.iter().any(|x| matches!(x, Violation::Unreachable { count: 1, example: 5 })),
        "{v:?}"
    );
}

#[test]
fn degree_cap_overflow_is_reported() {
    let mut g = ring(10);
    // Push node 2's out-degree past the cap of 3 with distinct far targets.
    g.add_edge(2, 5);
    g.add_edge(2, 6);
    let v = audit_ring(&g);
    assert!(
        v.iter()
            .any(|x| matches!(x, Violation::DegreeOverflow { node: 2, degree: 4, cap: 3 })),
        "{v:?}"
    );
}

#[test]
fn entry_out_of_bounds_short_circuits() {
    let g = ring(4);
    let v = audit_graph(&g, Some(9), Some(3));
    assert_eq!(v, vec![Violation::EntryOutOfBounds { entry: 9, n: 4 }]);
}

#[test]
fn tombstone_and_duplicate_external_ids_are_reported() {
    // A snapshot table where internal slots 1 and 3 share external id 40,
    // and external id 41 was tombstoned before the publish.
    let external = [10u64, 40, 41, 40];
    let v = audit_external_ids(&external, |e| e == 41);
    assert!(v.contains(&Violation::DuplicateExternalId { external: 40 }), "{v:?}");
    assert!(v.contains(&Violation::TombstoneInSnapshot { external: 41 }), "{v:?}");
    // A healthy table is clean.
    assert_eq!(audit_external_ids(&[1, 2, 3], |_| false), Vec::new());
}

/// A relayouted publication must survive the SNP1 store round-trip and
/// clear the full graph audit on both sides: BFS relayout is an isomorphic
/// relabeling, so every invariant the auditor checks (bounds, degrees,
/// reachability, navigability, serialized round-trip, external-id hygiene)
/// must hold identically before persist and after recovery.
#[test]
fn relayouted_publication_roundtrips_snp1_and_passes_full_audit() {
    use ann_suite::ann_audit::audit_tau_index;
    use ann_suite::ann_service::{IndexWriter, Metrics, SnapshotStore};

    let dir = std::env::temp_dir()
        .join("ann_suite_relayout_audit")
        .join(format!("{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let ds = Recipe::SiftLike.build(400, 8, 7);
    let base = Arc::new(ds.base);
    let knn = brute_force_knn_graph(ds.metric, &base, 16).unwrap();
    let tau = mean_nn_distance(&base, 50, 0) * 0.05;
    let params = TauMngParams { tau, ..Default::default() };
    let idx = build_tau_mng(base, ds.metric, &knn, params).unwrap();

    let store = SnapshotStore::open(&dir).unwrap();
    let (mut writer, cell) =
        IndexWriter::attach_durable(idx, params, Arc::new(Metrics::new()), Arc::clone(&store));
    assert!(writer.relayout_enabled(), "relayout must be on by default");

    // Mutate past the attach-time publication so the next publish exercises
    // compaction + relayout together, then persist it.
    for q in 0..ds.queries.len() as u32 {
        writer.insert(ds.queries.get(q)).unwrap();
    }
    writer.delete(3).unwrap();
    writer.delete(5).unwrap();
    let generation = writer.publish().unwrap();

    let full = AuditOptions::default();
    let served = cell.load();
    let v = audit_tau_index(served.index(), &full);
    assert!(v.is_empty(), "served relayouted snapshot not clean: {v:?}");
    let v = audit_external_ids(served.external_ids(), |e| e == 3 || e == 5);
    assert!(v.is_empty(), "served external ids not clean: {v:?}");

    // Round-trip: recover from disk and re-audit the recovered image.
    drop(writer);
    let store2 = SnapshotStore::open(&dir).unwrap();
    let report = store2.recover().unwrap();
    assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
    let rec = report.recovered.expect("persisted generation must recover");
    assert_eq!(rec.generation, generation);
    assert_eq!(rec.external_ids, served.external_ids(), "id table changed in round-trip");
    let v = audit_tau_index(&rec.index, &full);
    assert!(v.is_empty(), "recovered relayouted snapshot not clean: {v:?}");

    // And the recovered index serves bit-identical results.
    let mut scratch = ann_suite::ann_graph::Scratch::new(rec.index.store().len());
    for q in 0..ds.queries.len() as u32 {
        let a = served.index().search_with(ds.queries.get(q), 5, 32, &mut scratch);
        let b = rec.index.search_with(ds.queries.get(q), 5, 32, &mut scratch);
        assert_eq!(a.ids, b.ids, "q{q}: recovered ids differ");
        let (da, db): (Vec<u32>, Vec<u32>) = (
            a.dists.iter().map(|d| d.to_bits()).collect(),
            b.dists.iter().map(|d| d.to_bits()).collect(),
        );
        assert_eq!(da, db, "q{q}: recovered distances differ");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every builder in the workspace, built over one real corpus, must clear
/// the full audit with zero findings — the corruption tests above prove the
/// auditor can see problems; this proves the builders don't have any.
#[test]
fn all_builders_pass_clean_audit() {
    const N: usize = 1_500;
    let ds = Recipe::SiftLike.build(N, 10, 1234);
    let base = Arc::new(ds.base);
    let metric = ds.metric;
    let knn = brute_force_knn_graph(metric, &base, 20).unwrap();
    let tau = mean_nn_distance(&base, 100, 0) * 0.05;

    let navigable = AuditOptions::default();
    let structural = AuditOptions { monotonicity_floor: None, ..AuditOptions::default() };

    let mut reports = vec![audit_bare_graph("kNN", &knn.to_var_graph(), Some(20))];

    let hnsw = Hnsw::build(base.clone(), metric, Default::default()).unwrap();
    reports.push(audit_entry_graph(
        "HNSW layer0",
        hnsw.bottom_layer(),
        &base,
        hnsw.entry_point().0,
        Some(hnsw.params().max_m0()),
        &structural,
    ));

    let nsg_params = ann_suite::ann_nsg::NsgParams::default();
    let nsg = build_nsg(base.clone(), metric, &knn, nsg_params).unwrap();
    reports.push(audit_frozen("NSG", &nsg, Some(nsg_params.r), &navigable));

    let ssg_params = ann_suite::ann_nsg::SsgParams::default();
    let ssg = build_ssg(base.clone(), metric, &knn, ssg_params).unwrap();
    reports.push(audit_frozen("SSG", &ssg, Some(ssg_params.r), &navigable));

    let vam_params = ann_suite::ann_vamana::VamanaParams::default();
    let vamana = build_vamana(base.clone(), metric, vam_params).unwrap();
    reports.push(audit_frozen("Vamana", &vamana, Some(vam_params.r), &navigable));

    let hcnng = build_hcnng(base.clone(), metric, Default::default()).unwrap();
    reports.push(audit_frozen("HCNNG", &hcnng, None, &structural));

    let tau_params = TauMngParams { tau, ..Default::default() };
    let tmng = build_tau_mng(base, metric, &knn, tau_params).unwrap();
    reports.push(audit_tau(
        "tau-MNG",
        &tmng,
        &AuditOptions { degree_cap: Some(tau_params.r), ..AuditOptions::default() },
    ));

    for r in &reports {
        assert!(r.is_clean(), "{r}");
    }
}
