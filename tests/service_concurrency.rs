//! Snapshot-consistency stress test for `ann-service`: a writer running an
//! insert/delete/compact/publish loop races concurrent readers for over a
//! second of wall clock, and the readers must never observe a
//! deleted-and-published point, never get a short answer, and never panic.
//!
//! The check is exact, not statistical: every reply carries the generation
//! of the snapshot that answered it, the writer records the generation at
//! which each deletion was published, and a reply of generation `g` must
//! not contain any external id whose deletion was published at or before
//! `g`. (A reply from an *older* snapshot may legitimately contain a point
//! deleted later — that is the RCU contract, not a bug.)
//!
//! The same contract is then re-proved over a sharded set: a merged reply
//! claims the *minimum* generation across the shard snapshots that
//! answered it, so a deletion published at set generation `d` is already
//! applied on its owning shard whenever the claimed generation is `>= d` —
//! the check carries over verbatim with per-shard publishes racing fan-out
//! reads.

use ann_suite::ann_service::{AnnService, ServiceConfig};
use ann_suite::ann_vectors::synthetic::{
    mixture_base, mixture_queries, FrozenMixture, MixtureSpec,
};
use ann_suite::ann_vectors::Metric;
use ann_suite::tau_mg::{build_tau_mng, TauMngParams};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N0: usize = 800;
const DIM: usize = 8;
const K: usize = 5;
const READERS: usize = 4;
const CHURN: usize = 8; // inserts and deletes per publish cycle
const RUN_FOR: Duration = Duration::from_millis(1200);

#[test]
fn readers_never_observe_published_deletions() {
    let mix = FrozenMixture::new(&MixtureSpec::default_for(DIM), 0xC0FFEE);
    let base = Arc::new(mixture_base(&mix, N0, 0xC0FFEE));
    let queries = mixture_queries(&mix, 64, 0xC0FFEE);
    let knn = ann_suite::ann_knng::brute_force_knn_graph(Metric::L2, &base, 12).unwrap();
    let params = TauMngParams { tau: 0.2, r: 24, l: 64, c: 200 };
    let index = build_tau_mng(base.clone(), Metric::L2, &knn, params).unwrap();

    let (svc, mut writer) = AnnService::launch(
        index,
        params,
        ServiceConfig { workers: READERS, queue_capacity: 64, ..Default::default() },
    );
    let service = &svc;
    let stop = AtomicBool::new(false);
    let stop = &stop;
    let queries = &queries;

    // (generation the reply came from, external ids it returned)
    type Observations = Vec<(u64, Vec<u64>)>;

    let (deleted_at, observations): (HashMap<u64, u64>, Vec<Observations>) =
        std::thread::scope(|s| {
            let readers: Vec<_> = (0..READERS)
                .map(|r| {
                    s.spawn(move || {
                        let mut seen: Observations = Vec::with_capacity(4096);
                        let mut cursor = r as u32;
                        let mut last_gen = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let batch: Vec<Vec<f32>> = (0..4)
                                .map(|i| queries.get((cursor + i) % queries.len() as u32).to_vec())
                                .collect();
                            cursor = (cursor + 4) % queries.len() as u32;
                            let result = service
                                .submit(batch, K)
                                .wait()
                                .expect("service alive while readers run");
                            for reply in result.replies {
                                assert_eq!(
                                    reply.ids.len(),
                                    K,
                                    "short answer under churn (gen {})",
                                    reply.generation
                                );
                                assert!(
                                    reply.generation >= last_gen,
                                    "snapshot generation went backwards for one reader: \
                                     {} after {last_gen}",
                                    reply.generation
                                );
                                last_gen = reply.generation;
                                seen.push((reply.generation, reply.ids));
                            }
                        }
                        seen
                    })
                })
                .collect();

            // Writer: churn and publish until the clock runs out, recording
            // the publish generation of every deletion.
            let mut deleted_at: HashMap<u64, u64> = HashMap::new();
            let mut delete_cursor = 0u64;
            let started = Instant::now();
            let mut insert_cursor = 0u32;
            while started.elapsed() < RUN_FOR {
                let mut cycle_deletes = Vec::with_capacity(CHURN);
                for _ in 0..CHURN {
                    writer.insert(base.get(insert_cursor)).expect("insert under churn");
                    insert_cursor = (insert_cursor + 1) % N0 as u32;
                    writer.delete(delete_cursor).expect("delete oldest live id");
                    cycle_deletes.push(delete_cursor);
                    delete_cursor += 1;
                }
                let generation = writer.publish().expect("publish under churn");
                for ext in cycle_deletes {
                    deleted_at.insert(ext, generation);
                }
            }
            stop.store(true, Ordering::Relaxed);
            let observations =
                readers.into_iter().map(|h| h.join().expect("reader panicked")).collect();
            (deleted_at, observations)
        });

    // The writer must have actually raced the readers through several
    // snapshot cycles, and the readers must have actually searched.
    let generations = writer.generation();
    assert!(generations >= 3, "writer only published {generations} generations in 1.2s");
    assert!(!deleted_at.is_empty());
    let total: usize = observations.iter().map(Vec::len).sum();
    assert!(total > 100, "readers only completed {total} queries in 1.2s");

    // The exact consistency check: no reply contains an id whose deletion
    // was published at or before the reply's generation.
    for seen in &observations {
        for (generation, ids) in seen {
            for id in ids {
                if let Some(&dg) = deleted_at.get(id) {
                    assert!(
                        *generation < dg,
                        "reply from generation {generation} contains external id {id}, \
                         whose deletion was published at generation {dg}"
                    );
                }
            }
        }
    }

    // Sanity on the counters the serving layer reports.
    let m = service.metrics();
    assert_eq!(m.completed.get(), total as u64);
    assert_eq!(m.snapshots_published.get(), generations);
    svc.shutdown();
}

const SHARDS: usize = 3;

#[test]
fn sharded_readers_never_observe_published_deletions() {
    let mix = FrozenMixture::new(&MixtureSpec::default_for(DIM), 0xBEEF);
    let base = Arc::new(mixture_base(&mix, N0, 0xBEEF));
    let queries = mixture_queries(&mix, 64, 0xBEEF);
    let knn = ann_suite::ann_knng::brute_force_knn_graph(Metric::L2, &base, 12).unwrap();
    let params = TauMngParams { tau: 0.2, r: 24, l: 64, c: 200 };
    let index = build_tau_mng(base.clone(), Metric::L2, &knn, params).unwrap();

    let (svc, mut writer) = AnnService::launch_sharded(
        index,
        params,
        ServiceConfig { workers: READERS, queue_capacity: 64, ..Default::default() },
        SHARDS,
    )
    .expect("sharded launch");
    assert_eq!(svc.shard_set().healthy(), SHARDS);
    let service = &svc;
    let stop = AtomicBool::new(false);
    let stop = &stop;
    let queries = &queries;

    type Observations = Vec<(u64, Vec<u64>)>;

    let (deleted_at, observations): (HashMap<u64, u64>, Vec<Observations>) =
        std::thread::scope(|s| {
            let readers: Vec<_> = (0..READERS)
                .map(|r| {
                    s.spawn(move || {
                        let mut seen: Observations = Vec::with_capacity(4096);
                        let mut cursor = r as u32;
                        let mut last_gen = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let batch: Vec<Vec<f32>> = (0..4)
                                .map(|i| queries.get((cursor + i) % queries.len() as u32).to_vec())
                                .collect();
                            cursor = (cursor + 4) % queries.len() as u32;
                            let result = service
                                .submit(batch, K)
                                .wait()
                                .expect("service alive while readers run");
                            for reply in result.replies {
                                assert_eq!(
                                    reply.ids.len(),
                                    K,
                                    "short merged answer under churn (gen {})",
                                    reply.generation
                                );
                                assert!(
                                    reply.generation >= last_gen,
                                    "set generation went backwards for one reader: \
                                     {} after {last_gen}",
                                    reply.generation
                                );
                                last_gen = reply.generation;
                                seen.push((reply.generation, reply.ids));
                            }
                        }
                        seen
                    })
                })
                .collect();

            // Writer: churn through the shard-routing writer set — inserts
            // land on the owning shard, only dirty shards republish — until
            // the clock runs out, recording the set generation of every
            // published deletion.
            let mut deleted_at: HashMap<u64, u64> = HashMap::new();
            let mut delete_cursor = 0u64;
            let started = Instant::now();
            let mut insert_cursor = 0u32;
            while started.elapsed() < RUN_FOR {
                let mut cycle_deletes = Vec::with_capacity(CHURN);
                for _ in 0..CHURN {
                    writer.insert(base.get(insert_cursor)).expect("insert under churn");
                    insert_cursor = (insert_cursor + 1) % N0 as u32;
                    writer.delete(delete_cursor).expect("delete oldest live id");
                    cycle_deletes.push(delete_cursor);
                    delete_cursor += 1;
                }
                let generation = writer.publish().expect("publish under churn");
                for ext in cycle_deletes {
                    deleted_at.insert(ext, generation);
                }
            }
            stop.store(true, Ordering::Relaxed);
            let observations =
                readers.into_iter().map(|h| h.join().expect("reader panicked")).collect();
            (deleted_at, observations)
        });

    let generations = writer.generation();
    assert!(generations >= 3, "writer only published {generations} set generations in 1.2s");
    assert!(!deleted_at.is_empty());
    let total: usize = observations.iter().map(Vec::len).sum();
    assert!(total > 100, "readers only completed {total} queries in 1.2s");

    // The exact consistency check, over merged replies: no reply contains
    // an id whose deletion was published at or before the reply's claimed
    // (minimum-across-shards) generation.
    for seen in &observations {
        for (generation, ids) in seen {
            for id in ids {
                if let Some(&dg) = deleted_at.get(id) {
                    assert!(
                        *generation < dg,
                        "merged reply from set generation {generation} contains external \
                         id {id}, whose deletion was published at set generation {dg}"
                    );
                }
            }
        }
    }

    // Counters: each set-level publish republishes only the dirty shards,
    // so per-shard snapshot publications land between "at least one per
    // set generation" and "every shard every generation".
    let m = service.metrics();
    assert_eq!(m.completed.get(), total as u64);
    assert!(m.snapshots_published.get() >= generations);
    assert!(m.snapshots_published.get() <= generations * SHARDS as u64);
    assert_eq!(m.shards_degraded.get(), 0);
    svc.shutdown();
}
